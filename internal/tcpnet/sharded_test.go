package tcpnet

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/shard"
)

// The tentpole gate: over a grid of (stripes S, pool width, batch k), a
// concurrent fleet run hands out globally unique values in the right
// residue classes and the sum of per-stripe reads equals the sequential
// total — exact-count equivalence across S independent deployments.
func TestShardedClusterExactCount(t *testing.T) {
	topo, err := core.New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, cse := range []struct{ S, width, k int }{
		{1, 1, 1},
		{2, 2, 4},
		{3, 1, 8},
		{4, 2, 64},
	} {
		sc, stop, err := StartShardedCluster(topo, cse.S, 2)
		if err != nil {
			t.Fatal(err)
		}
		ctr := sc.NewCounter(cse.width)

		const procs, batches = 6, 4
		vals := make([][]int64, procs)
		var wg sync.WaitGroup
		for pid := 0; pid < procs; pid++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				for b := 0; b < batches; b++ {
					var err error
					vals[pid], err = ctr.IncBatch(pid+b*procs, cse.k, vals[pid])
					if err != nil {
						t.Error(err)
						return
					}
					v, err := ctr.Inc(pid)
					if err != nil {
						t.Error(err)
						return
					}
					vals[pid] = append(vals[pid], v)
				}
			}(pid)
		}
		wg.Wait()
		if t.Failed() {
			t.Fatalf("S=%d width=%d k=%d: workload failed", cse.S, cse.width, cse.k)
		}

		var all []int64
		for _, v := range vals {
			all = append(all, v...)
		}
		total := int64(procs * batches * (cse.k + 1))
		if got := int64(len(all)); got != total {
			t.Fatalf("S=%d: %d values for %d ops", cse.S, len(all), total)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		for i := 1; i < len(all); i++ {
			if all[i] == all[i-1] {
				t.Fatalf("S=%d: duplicate value %d", cse.S, all[i])
			}
		}
		// Residue discipline: pid's lone Inc lands in StripeOf(pid)'s class.
		for pid := 0; pid < procs; pid++ {
			want := int64(shard.StripeOf(pid, cse.S))
			if v := vals[pid][len(vals[pid])-1]; v%int64(cse.S) != want {
				t.Fatalf("S=%d: pid %d got %d outside residue class %d", cse.S, pid, v, want)
			}
		}
		// Exact-count read side: quiescent stripe reads sum to the total,
		// and the aggregate RPC bill is monotone and positive.
		got, err := ctr.Read()
		if err != nil {
			t.Fatal(err)
		}
		if got != total {
			t.Fatalf("S=%d: Read() = %d, want %d", cse.S, got, total)
		}
		var perStripe int64
		for i := 0; i < sc.Shards(); i++ {
			v, err := ctr.Counter(i).Read()
			if err != nil {
				t.Fatal(err)
			}
			perStripe += v
		}
		if perStripe != total {
			t.Fatalf("S=%d: per-stripe reads sum to %d, want %d", cse.S, perStripe, total)
		}
		before := ctr.RPCs()
		if before <= 0 {
			t.Fatalf("S=%d: no RPCs billed", cse.S)
		}
		ctr.Close()
		if after := ctr.RPCs(); after != before {
			t.Fatalf("S=%d: RPCs fell from %d to %d across Close", cse.S, before, after)
		}
		stop()
	}
}

// Fuzz-style mixed Inc/Dec run: random single and batched operations on
// random pids; the quiescent aggregate read equals incs minus decs.
func TestShardedClusterMixedIncDec(t *testing.T) {
	for _, fam := range []struct {
		name string
		w, t int
	}{
		{"C(4,8)", 4, 8},
		{"C(8,16)", 8, 16},
	} {
		t.Run(fam.name, func(t *testing.T) {
			topo, err := core.New(fam.w, fam.t)
			if err != nil {
				t.Fatal(err)
			}
			sc, stop, err := StartShardedCluster(topo, 3, 2)
			if err != nil {
				t.Fatal(err)
			}
			defer stop()
			ctr := sc.NewCounter(1)
			defer ctr.Close()

			rng := rand.New(rand.NewSource(11))
			var incs, decs int64
			for op := 0; op < 200; op++ {
				pid := rng.Intn(64)
				switch rng.Intn(4) {
				case 0:
					_, err = ctr.Inc(pid)
					incs++
				case 1:
					_, err = ctr.Dec(pid)
					decs++
				case 2:
					k := 1 + rng.Intn(9)
					_, err = ctr.IncBatch(pid, k, nil)
					incs += int64(k)
				default:
					k := 1 + rng.Intn(9)
					_, err = ctr.DecBatch(pid, k, nil)
					decs += int64(k)
				}
				if err != nil {
					t.Fatal(err)
				}
			}
			got, err := ctr.Read()
			if err != nil {
				t.Fatal(err)
			}
			if want := incs - decs; got != want {
				t.Fatalf("Read() = %d after %d incs / %d decs, want %d",
					got, incs, decs, want)
			}
		})
	}
}

func TestShardedClusterRejectsBadArgs(t *testing.T) {
	if _, err := NewShardedCluster(nil); err == nil {
		t.Fatal("NewShardedCluster(nil) succeeded")
	}
	topoA, err := core.New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	topoB, err := core.New(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	a, stopA, err := StartShardedCluster(topoA, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer stopA()
	b, stopB, err := StartShardedCluster(topoB, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer stopB()
	if _, err := NewShardedCluster([]*Cluster{a.Cluster(0), b.Cluster(0)}); err == nil {
		t.Fatal("mismatched shapes accepted")
	}
	if _, err := NewShardedCluster([]*Cluster{a.Cluster(0), nil}); err == nil {
		t.Fatal("nil cluster accepted")
	}
}
