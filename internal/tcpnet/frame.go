package tcpnet

import (
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"sync/atomic"
)

// Protocol op codes. Ops 1–5 are the v1 stateless frames kept decodable
// for old clients; ops 6–10 are the v2 exactly-once frames: HELLO binds a
// connection to a client id, and every v2 mutating frame carries a
// monotone per-client sequence number the shard dedups on (see the
// package comment). The op byte IS the version marker — the codec
// distinguishes v1 from v2 frames without connection state.
const (
	opStep  byte = 1
	opCell  byte = 2
	opStepN byte = 3
	opCellN byte = 4
	opRead  byte = 5

	opHello  byte = 6
	opStep2  byte = 7
	opCell2  byte = 8
	opStepN2 byte = 9
	opCellN2 byte = 10
)

// maxFrameLen is the longest request frame: op(1) id(4) seq(8) count(8).
const maxFrameLen = 21

// frame is one decoded request frame. Fields beyond op and id are
// populated per op: client for HELLO, seq for the v2 mutating ops, n for
// the batched ops of either version.
type frame struct {
	op     byte
	id     int32
	client uint64
	seq    uint64
	n      int64
}

var errUnknownOp = errors.New("tcpnet: unknown op")

// frameExtra returns the payload length following the 5-byte op+id
// header, or -1 for an unknown op.
func frameExtra(op byte) int {
	switch op {
	case opStep, opCell, opRead:
		return 0
	case opHello, opStep2, opCell2, opStepN, opCellN:
		return 8
	case opStepN2, opCellN2:
		return 16
	}
	return -1
}

// appendFrame encodes f onto dst. The encoding is canonical: decoding
// and re-encoding any well-formed byte stream reproduces it exactly
// (FuzzFrameCodec holds the codec to this).
func appendFrame(dst []byte, f *frame) []byte {
	var b [maxFrameLen]byte
	b[0] = f.op
	binary.BigEndian.PutUint32(b[1:5], uint32(f.id))
	switch f.op {
	case opHello:
		binary.BigEndian.PutUint64(b[5:13], f.client)
	case opStep2, opCell2:
		binary.BigEndian.PutUint64(b[5:13], f.seq)
	case opStepN, opCellN:
		binary.BigEndian.PutUint64(b[5:13], uint64(f.n))
	case opStepN2, opCellN2:
		binary.BigEndian.PutUint64(b[5:13], f.seq)
		binary.BigEndian.PutUint64(b[13:21], uint64(f.n))
	}
	return append(dst, b[:5+frameExtra(f.op)]...)
}

// readFrame decodes one request frame from r into f, using buf as the
// read scratch. An unknown op is reported before any payload byte is
// consumed.
func readFrame(r io.Reader, buf *[maxFrameLen]byte, f *frame) error {
	if _, err := io.ReadFull(r, buf[:5]); err != nil {
		return err
	}
	f.op = buf[0]
	f.id = int32(binary.BigEndian.Uint32(buf[1:5]))
	f.client, f.seq, f.n = 0, 0, 0
	extra := frameExtra(f.op)
	if extra < 0 {
		return errUnknownOp
	}
	if extra > 0 {
		if _, err := io.ReadFull(r, buf[5:5+extra]); err != nil {
			return err
		}
	}
	switch f.op {
	case opHello:
		f.client = binary.BigEndian.Uint64(buf[5:13])
	case opStep2, opCell2:
		f.seq = binary.BigEndian.Uint64(buf[5:13])
	case opStepN, opCellN:
		f.n = int64(binary.BigEndian.Uint64(buf[5:13]))
	case opStepN2, opCellN2:
		f.seq = binary.BigEndian.Uint64(buf[5:13])
		f.n = int64(binary.BigEndian.Uint64(buf[13:21]))
	}
	return nil
}

// v2op maps a v1 mutating op to its seq-numbered v2 form.
func v2op(op byte) byte {
	switch op {
	case opStep:
		return opStep2
	case opCell:
		return opCell2
	case opStepN:
		return opStepN2
	case opCellN:
		return opCellN2
	}
	return op
}

// clientIDs hands out process-unique client ids from a random base, so
// clients from different processes sharing one shard fleet are unlikely
// to collide on a dedup window.
var clientIDs atomic.Uint64

func init() { clientIDs.Store(rand.Uint64()) }

func nextClientID() uint64 { return clientIDs.Add(1) }

// seqTape draws monotone sequence numbers from a counter shared across a
// Counter's flights and records them in issue order, so a rewound retry
// re-sends the IDENTICAL sequence number on the identical frame. Frame i
// of attempt 2 is frame i of attempt 1 because the walk is deterministic:
// batches replay the topology, and single-token walks are steered by
// replies that the shards' dedup windows replay verbatim for
// already-applied sequences.
type seqTape struct {
	src  *atomic.Uint64
	used []uint64
	next int
}

func (tp *seqTape) take() uint64 {
	if tp.next < len(tp.used) {
		v := tp.used[tp.next]
		tp.next++
		return v
	}
	v := tp.src.Add(1)
	tp.used = append(tp.used, v)
	tp.next = len(tp.used)
	return v
}

// rewind restarts the tape for a retry attempt.
func (tp *seqTape) rewind() { tp.next = 0 }
