//go:build !unix

package tcpnet

import "net"

// connDead is the no-probe fallback for platforms without nonblocking
// socket peeks: sessions are assumed alive at checkout, and dead
// connections are discovered (and retried exactly-once) by the flight.
func connDead(net.Conn) bool { return false }
