package tcpnet

import (
	"encoding/binary"
	"io"
	"math"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/seq"
	"repro/internal/wire"
)

// startCluster launches `shards` shard servers on loopback for the given
// topology and returns the client cluster plus a shutdown func.
func startCluster(t *testing.T, topo *network.Network, shards int) (*Cluster, func()) {
	t.Helper()
	var servers []*Shard
	addrs := make([]string, shards)
	for i := 0; i < shards; i++ {
		s, err := StartShard("127.0.0.1:0", topo, i, shards)
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, s)
		addrs[i] = s.Addr()
	}
	return NewCluster(topo, addrs), func() {
		for _, s := range servers {
			s.Close()
		}
	}
}

// The headline test: a C(4,8) counting network deployed across 3 TCP
// shards hands out dense unique values to concurrent client sessions.
func TestDistributedCounterDense(t *testing.T) {
	topo, err := core.New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	cluster, stop := startCluster(t, topo, 3)
	defer stop()

	const procs, per = 6, 150
	vals := make([][]int64, procs)
	var wg sync.WaitGroup
	for pid := 0; pid < procs; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			sess, err := cluster.NewSession()
			if err != nil {
				t.Error(err)
				return
			}
			defer sess.Close()
			for i := 0; i < per; i++ {
				v, err := sess.Inc(pid)
				if err != nil {
					t.Error(err)
					return
				}
				vals[pid] = append(vals[pid], v)
			}
		}(pid)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	var all []int64
	for _, s := range vals {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i, v := range all {
		if v != int64(i) {
			t.Fatalf("values not dense at %d: %d", i, v)
		}
	}
}

// Per-session sequential behaviour matches the in-memory network exactly.
func TestDistributedMatchesLocal(t *testing.T) {
	topo, err := core.New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	cluster, stop := startCluster(t, topo, 2)
	defer stop()
	sess, err := cluster.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	local, err := core.New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	localCells := []int64{0, 1, 2, 3}
	for i := 0; i < 60; i++ {
		got, err := sess.Inc(i)
		if err != nil {
			t.Fatal(err)
		}
		wire := local.Traverse(i % 4)
		want := localCells[wire]
		localCells[wire] += 4
		if got != want {
			t.Fatalf("op %d: distributed %d, local %d", i, got, want)
		}
	}
}

// Exit distribution across wires keeps the step property.
func TestDistributedStepProperty(t *testing.T) {
	topo, err := core.New(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	cluster, stop := startCluster(t, topo, 4)
	defer stop()
	if cluster.Hops() != topo.Depth()+1 {
		t.Fatalf("hops = %d", cluster.Hops())
	}

	counts := make([]int64, 16)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for pid := 0; pid < 8; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			sess, err := cluster.NewSession()
			if err != nil {
				t.Error(err)
				return
			}
			defer sess.Close()
			for i := 0; i < 100; i++ {
				v, err := sess.Inc(pid)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				counts[v%16]++
				mu.Unlock()
			}
		}(pid)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// 800 tokens, 16 wires: values mod 16 identify exit cells; dense
	// values 0..799 mean exactly 50 per residue class.
	if !seq.IsStep(counts) {
		t.Fatalf("exit counts %v not step", counts)
	}
}

// Batched pipelines on a live cluster claim exactly the same dense value
// ranges as the in-memory batched counter: sequential equivalence against
// counter-free local replay, per constructor family.
func TestBatchMatchesLocal(t *testing.T) {
	for _, fam := range []struct {
		name  string
		build func() (*network.Network, error)
	}{
		{"C(4,8)", func() (*network.Network, error) { return core.New(4, 8) }},
		{"C(8,16)", func() (*network.Network, error) { return core.New(8, 16) }},
	} {
		t.Run(fam.name, func(t *testing.T) {
			topo, err := fam.build()
			if err != nil {
				t.Fatal(err)
			}
			cluster, stop := startCluster(t, topo, 3)
			defer stop()
			sess, err := cluster.NewSession()
			if err != nil {
				t.Fatal(err)
			}
			defer sess.Close()

			local, err := fam.build()
			if err != nil {
				t.Fatal(err)
			}
			w := topo.InWidth()
			tally := make([]int64, topo.OutWidth())
			cells := make([]int64, topo.OutWidth())
			for i := range cells {
				cells[i] = int64(i)
			}
			stride := int64(topo.OutWidth())
			for round, k := range []int{5, 1, 17, 64, 3} {
				wire := round % w
				got, err := sess.IncBatch(wire, k, nil)
				if err != nil {
					t.Fatal(err)
				}
				// Local replay: batched traversal plus cell arithmetic.
				clear(tally)
				local.TraverseBatchInto(wire, int64(k), tally)
				var want []int64
				for i, cnt := range tally {
					for j := int64(0); j < cnt; j++ {
						want = append(want, cells[i]+j*stride)
					}
					cells[i] += cnt * stride
				}
				sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
				sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
				if !seq.Equal(got, want) {
					t.Fatalf("round %d: cluster batch %v, local replay %v", round, got, want)
				}
			}
		})
	}
}

// Concurrent batched sessions still hand out exactly {0..m-1}.
func TestBatchedSessionsDense(t *testing.T) {
	topo, err := core.New(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	cluster, stop := startCluster(t, topo, 3)
	defer stop()

	const procs, batches, k = 6, 10, 16
	vals := make([][]int64, procs)
	var wg sync.WaitGroup
	for pid := 0; pid < procs; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			sess, err := cluster.NewSession()
			if err != nil {
				t.Error(err)
				return
			}
			defer sess.Close()
			for i := 0; i < batches; i++ {
				var err error
				vals[pid], err = sess.IncBatch(pid+i, k, vals[pid])
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(pid)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	var all []int64
	for _, v := range vals {
		all = append(all, v...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i, v := range all {
		if v != int64(i) {
			t.Fatalf("batched values not dense at %d: %d", i, v)
		}
	}
}

// DecBatch revokes exactly what IncBatch claimed and rewinds the cluster
// to its origin; antitoken frames share the batched protocol.
func TestDecBatchRevokes(t *testing.T) {
	topo, err := core.New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	cluster, stop := startCluster(t, topo, 2)
	defer stop()
	sess, err := cluster.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	claimed, err := sess.IncBatch(1, 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	revoked, err := sess.DecBatch(2, 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(claimed, func(i, j int) bool { return claimed[i] < claimed[j] })
	sort.Slice(revoked, func(i, j int) bool { return revoked[i] < revoked[j] })
	if !seq.Equal(claimed, revoked) {
		t.Fatalf("revoked %v != claimed %v", revoked, claimed)
	}
	// Cluster back at the origin: the next single Inc must return 0, and
	// single Dec must revoke it again.
	v, err := sess.Inc(0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Fatalf("Inc after full revocation = %d, want 0", v)
	}
	d, err := sess.Dec(0)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("Dec after Inc = %d, want 0", d)
	}
}

// The headline economics: k tokens as one pipeline cost at least 5x fewer
// round trips than k singles (exact RPC counts, not timing).
func TestBatchRPCsPerToken(t *testing.T) {
	topo, err := core.New(8, 24)
	if err != nil {
		t.Fatal(err)
	}
	cluster, stop := startCluster(t, topo, 3)
	defer stop()
	sess, err := cluster.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	const k = 64
	for i := 0; i < k; i++ {
		if _, err := sess.Inc(0); err != nil {
			t.Fatal(err)
		}
	}
	single := sess.RPCs()
	if want := int64(k * cluster.Hops()); single != want {
		t.Fatalf("single-token RPCs = %d, want %d", single, want)
	}
	if _, err := sess.IncBatch(0, k, nil); err != nil {
		t.Fatal(err)
	}
	batch := sess.RPCs() - single
	if batch*5 > single {
		t.Fatalf("RPCs per token: batched %d/%d vs single %d/%d — below the 5x floor",
			batch, k, single, k)
	}
	t.Logf("k=%d: %d RPCs batched vs %d singles (%.1fx)", k, batch, single,
		float64(single)/float64(batch))
}

// Batched frame edge cases: k=0 and k<0 are no-ops without round trips;
// k=1 behaves exactly like a single-token Inc.
func TestBatchEdgeSizes(t *testing.T) {
	topo, err := core.New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	cluster, stop := startCluster(t, topo, 2)
	defer stop()
	sess, err := cluster.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	if got, err := sess.IncBatch(0, 0, nil); err != nil || len(got) != 0 {
		t.Fatalf("IncBatch k=0 = (%v, %v)", got, err)
	}
	if got, err := sess.DecBatch(0, -5, nil); err != nil || len(got) != 0 {
		t.Fatalf("DecBatch k<0 = (%v, %v)", got, err)
	}
	if got := sess.RPCs(); got != 0 {
		t.Fatalf("empty batches performed %d RPCs", got)
	}
	one, err := sess.IncBatch(0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0] != 0 {
		t.Fatalf("IncBatch k=1 = %v, want [0]", one)
	}
	v, err := sess.Inc(0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("Inc after IncBatch(1) = %d, want 1", v)
	}
}

// Protocol violations drop the connection rather than corrupting state:
// unknown op, zero batch count, unowned balancer id, and a partial frame
// (client dies mid-request). The shard must survive all of them and keep
// serving well-formed sessions.
func TestMalformedFrames(t *testing.T) {
	topo, err := core.New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	cluster, stop := startCluster(t, topo, 1)
	defer stop()
	addr := cluster.addrs[0]

	send := func(t *testing.T, frame []byte) {
		t.Helper()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if _, err := conn.Write(frame); err != nil {
			t.Fatal(err)
		}
		// The shard must close the connection without replying.
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		var buf [8]byte
		if n, err := conn.Read(buf[:]); err == nil {
			t.Fatalf("shard replied %d bytes to a malformed frame", n)
		}
	}
	rawFrame := func(op byte, id int32, n int64) []byte {
		b := make([]byte, 13)
		b[0] = op
		binary.BigEndian.PutUint32(b[1:5], uint32(id))
		binary.BigEndian.PutUint64(b[5:], uint64(n))
		return b
	}
	hello := wire.AppendFrame(nil, &wire.Frame{Op: wire.OpHello, Client: 77})
	t.Run("unknown-op", func(t *testing.T) { send(t, rawFrame(99, 0, 1)[:5]) })
	t.Run("zero-count", func(t *testing.T) { send(t, rawFrame(wire.OpStepN, 0, 0)) })
	t.Run("minint-count", func(t *testing.T) { send(t, rawFrame(wire.OpStepN, 0, math.MinInt64)) })
	t.Run("minint-cell", func(t *testing.T) { send(t, rawFrame(wire.OpCellN, 0, math.MinInt64)) })
	t.Run("unowned-id", func(t *testing.T) { send(t, rawFrame(wire.OpStepN, 9999, 4)) })
	t.Run("unowned-cell", func(t *testing.T) { send(t, rawFrame(wire.OpCellN, 0x7fff, 4)) })
	t.Run("unowned-read", func(t *testing.T) { send(t, rawFrame(wire.OpRead, 9999, 0)[:5]) })
	t.Run("v2-before-hello", func(t *testing.T) {
		// A seq-numbered mutating frame on a connection that never sent
		// HELLO has no dedup window to land in: dropped.
		send(t, wire.AppendFrame(nil, &wire.Frame{Op: wire.OpStepN2, ID: 0, Seq: 1, N: 4}))
	})
	t.Run("v2-zero-count", func(t *testing.T) {
		send(t, append(hello[:len(hello):len(hello)],
			wire.AppendFrame(nil, &wire.Frame{Op: wire.OpStepN2, ID: 0, Seq: 1, N: 0})...))
	})
	t.Run("v2-minint-count", func(t *testing.T) {
		send(t, append(hello[:len(hello):len(hello)],
			wire.AppendFrame(nil, &wire.Frame{Op: wire.OpCellN2, ID: 0, Seq: 1, N: math.MinInt64})...))
	})
	t.Run("v2-unowned-id", func(t *testing.T) {
		send(t, append(hello[:len(hello):len(hello)],
			wire.AppendFrame(nil, &wire.Frame{Op: wire.OpStep2, ID: 9999, Seq: 1})...))
	})
	t.Run("partial-frame", func(t *testing.T) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write([]byte{wire.OpStepN, 0, 0}); err != nil {
			t.Fatal(err)
		}
		conn.Close() // die mid-request
	})

	// The shard is still healthy: a well-formed session works.
	sess, err := cluster.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if v, err := sess.Inc(0); err != nil || v != 0 {
		t.Fatalf("Inc after malformed traffic = (%d, %v), want (0, nil)", v, err)
	}
}

// The coalescing counter client: concurrent Inc callers merge into
// batched pipelines, values stay {0..m-1}, and the cluster-wide RPC count
// lands below the uncoalesced cost of the same workload.
func TestCounterCoalesced(t *testing.T) {
	topo, err := core.New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	cluster, stop := startCluster(t, topo, 2)
	defer stop()
	ctr := cluster.NewCounter()
	defer ctr.Close()

	const procs, per = 16, 100
	vals := make([][]int64, procs)
	var wg sync.WaitGroup
	for pid := 0; pid < procs; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				v, err := ctr.Inc(pid)
				if err != nil {
					t.Error(err)
					return
				}
				vals[pid] = append(vals[pid], v)
			}
		}(pid)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	var all []int64
	for _, v := range vals {
		all = append(all, v...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i, v := range all {
		if v != int64(i) {
			t.Fatalf("coalesced values not dense at %d: %d", i, v)
		}
	}
	uncoalesced := int64(procs * per * cluster.Hops())
	got := ctr.RPCs()
	if got >= uncoalesced {
		t.Fatalf("coalescing saved nothing: %d RPCs for %d ops (uncoalesced %d)",
			got, procs*per, uncoalesced)
	}
	t.Logf("RPCs: %d coalesced vs %d uncoalesced (%.1fx fewer)", got, uncoalesced,
		float64(uncoalesced)/float64(got))
	// The RPC bill is monotone: closing the sessions must not erase it.
	ctr.Close()
	if after := ctr.RPCs(); after != got {
		t.Fatalf("RPCs dropped from %d to %d after Close", got, after)
	}
}

// A failed flight evicts its session: after the shard comes back on the
// same address, the next Inc on that wire redials instead of reusing the
// dead (and possibly desynced) connections forever.
func TestCounterRedialsAfterShardRestart(t *testing.T) {
	topo, err := core.New(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := StartShard("127.0.0.1:0", topo, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	cluster := NewCluster(topo, []string{addr})
	ctr := cluster.NewCounter()
	defer ctr.Close()
	if v, err := ctr.Inc(0); err != nil || v != 0 {
		t.Fatalf("first Inc = (%d, %v)", v, err)
	}
	s.Close()
	if _, err := ctr.Inc(0); err == nil {
		t.Fatal("Inc against a dead shard succeeded")
	}
	// Restart on the same address; counter state restarts with it (the
	// shard owns the cells), so values begin at 0 again.
	s2, err := StartShard(addr, topo, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	v, err := ctr.Inc(0)
	if err != nil {
		t.Fatalf("Inc after shard restart: %v", err)
	}
	if v != 0 {
		t.Fatalf("Inc after restart = %d, want 0", v)
	}
}

func TestSessionDialFailure(t *testing.T) {
	topo, err := core.New(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	cluster := NewCluster(topo, []string{"127.0.0.1:1"}) // nothing listens
	if _, err := cluster.NewSession(); err == nil {
		t.Fatal("dial to dead shard succeeded")
	}
}

// The protocol-version bump keeps v1 frames decodable: a raw client
// speaking the stateless v1 ops (no HELLO, no sequence numbers) gets
// correct replies from the same shard that serves v2 sessions, and the
// two interleave on shared balancer/cell state. The codec distinguishes
// the versions by op byte alone.
func TestLegacyFramesStillServed(t *testing.T) {
	topo, err := core.New(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	cluster, stop := startCluster(t, topo, 1)
	defer stop()

	conn, err := net.Dial("tcp", cluster.addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rpc := func(f *wire.Frame) int64 {
		t.Helper()
		if _, err := conn.Write(wire.AppendFrame(nil, f)); err != nil {
			t.Fatal(err)
		}
		var resp [8]byte
		if _, err := io.ReadFull(conn, resp[:]); err != nil {
			t.Fatal(err)
		}
		return int64(binary.BigEndian.Uint64(resp[:]))
	}
	stride := int64(topo.OutWidth())
	legacyInc := func(in int) int64 {
		t.Helper()
		node, port := topo.InputDest(in)
		for node >= 0 {
			p := rpc(&wire.Frame{Op: wire.OpStep, ID: int32(node)})
			node, port = topo.Dest(node, int(p))
		}
		return rpc(&wire.Frame{Op: wire.OpCell, ID: int32(port) | int32(stride)<<16})
	}

	// v1 and v2 traffic interleave on the same counter state (the
	// pooled Counter speaks v2: HELLO plus seq-numbered frames).
	if v := legacyInc(0); v != 0 {
		t.Fatalf("legacy Inc #1 = %d, want 0", v)
	}
	ctr := cluster.NewCounterPool(1)
	defer ctr.Close()
	if v, err := ctr.Inc(0); err != nil || v != 1 {
		t.Fatalf("v2 Inc between legacy Incs = (%d, %v), want (1, nil)", v, err)
	}
	if v := legacyInc(0); v != 2 {
		t.Fatalf("legacy Inc #2 = %d, want 2", v)
	}

	// v1 batched and read frames: CELLN's reply is the cell value after
	// the add, and READ observes exactly that, seq-free on both sides.
	cellID := int32(0) | int32(stride)<<16
	before := rpc(&wire.Frame{Op: wire.OpRead, ID: 0})
	after := rpc(&wire.Frame{Op: wire.OpCellN, ID: cellID, N: 2})
	if after != before+2*stride {
		t.Fatalf("legacy CELLN = %d, want %d", after, before+2*stride)
	}
	if got := rpc(&wire.Frame{Op: wire.OpRead, ID: 0}); got != after {
		t.Fatalf("legacy READ after CELLN = %d, want %d", got, after)
	}
}

func TestShardCloseIdempotentEnough(t *testing.T) {
	topo, err := core.New(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := StartShard("127.0.0.1:0", topo, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.Close() // must terminate cleanly with no clients
}
