package tcpnet

import (
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/seq"
)

// startCluster launches `shards` shard servers on loopback for the given
// topology and returns the client cluster plus a shutdown func.
func startCluster(t *testing.T, topo *network.Network, shards int) (*Cluster, func()) {
	t.Helper()
	var servers []*Shard
	addrs := make([]string, shards)
	for i := 0; i < shards; i++ {
		s, err := StartShard("127.0.0.1:0", topo, i, shards)
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, s)
		addrs[i] = s.Addr()
	}
	return NewCluster(topo, addrs), func() {
		for _, s := range servers {
			s.Close()
		}
	}
}

// The headline test: a C(4,8) counting network deployed across 3 TCP
// shards hands out dense unique values to concurrent client sessions.
func TestDistributedCounterDense(t *testing.T) {
	topo, err := core.New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	cluster, stop := startCluster(t, topo, 3)
	defer stop()

	const procs, per = 6, 150
	vals := make([][]int64, procs)
	var wg sync.WaitGroup
	for pid := 0; pid < procs; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			sess, err := cluster.NewSession()
			if err != nil {
				t.Error(err)
				return
			}
			defer sess.Close()
			for i := 0; i < per; i++ {
				v, err := sess.Inc(pid)
				if err != nil {
					t.Error(err)
					return
				}
				vals[pid] = append(vals[pid], v)
			}
		}(pid)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	var all []int64
	for _, s := range vals {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i, v := range all {
		if v != int64(i) {
			t.Fatalf("values not dense at %d: %d", i, v)
		}
	}
}

// Per-session sequential behaviour matches the in-memory network exactly.
func TestDistributedMatchesLocal(t *testing.T) {
	topo, err := core.New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	cluster, stop := startCluster(t, topo, 2)
	defer stop()
	sess, err := cluster.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	local, err := core.New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	localCells := []int64{0, 1, 2, 3}
	for i := 0; i < 60; i++ {
		got, err := sess.Inc(i)
		if err != nil {
			t.Fatal(err)
		}
		wire := local.Traverse(i % 4)
		want := localCells[wire]
		localCells[wire] += 4
		if got != want {
			t.Fatalf("op %d: distributed %d, local %d", i, got, want)
		}
	}
}

// Exit distribution across wires keeps the step property.
func TestDistributedStepProperty(t *testing.T) {
	topo, err := core.New(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	cluster, stop := startCluster(t, topo, 4)
	defer stop()
	if cluster.Hops() != topo.Depth()+1 {
		t.Fatalf("hops = %d", cluster.Hops())
	}

	counts := make([]int64, 16)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for pid := 0; pid < 8; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			sess, err := cluster.NewSession()
			if err != nil {
				t.Error(err)
				return
			}
			defer sess.Close()
			for i := 0; i < 100; i++ {
				v, err := sess.Inc(pid)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				counts[v%16]++
				mu.Unlock()
			}
		}(pid)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// 800 tokens, 16 wires: values mod 16 identify exit cells; dense
	// values 0..799 mean exactly 50 per residue class.
	if !seq.IsStep(counts) {
		t.Fatalf("exit counts %v not step", counts)
	}
}

func TestSessionDialFailure(t *testing.T) {
	topo, err := core.New(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	cluster := NewCluster(topo, []string{"127.0.0.1:1"}) // nothing listens
	if _, err := cluster.NewSession(); err == nil {
		t.Fatal("dial to dead shard succeeded")
	}
}

func TestShardCloseIdempotentEnough(t *testing.T) {
	topo, err := core.New(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := StartShard("127.0.0.1:0", topo, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.Close() // must terminate cleanly with no clients
}
