package tcpnet

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/wire"
)

// killOnOp is a net.Conn that drops the connection when the (skip+1)-th
// frame with the given op byte is about to be written — a kill at an
// exact frame boundary, after part of the window has been applied.
type killOnOp struct {
	net.Conn
	op   byte
	skip atomic.Int32
}

func newKillOnOp(conn net.Conn, op byte, skip int32) *killOnOp {
	k := &killOnOp{Conn: conn, op: op}
	k.skip.Store(skip)
	return k
}

func (k *killOnOp) Write(b []byte) (int, error) {
	if len(b) > 0 && b[0] == k.op && k.skip.Add(-1) < 0 {
		k.Conn.Close()
		return 0, errInjected
	}
	return k.Conn.Write(b)
}

// The leak PR 3 documented, as a failing-then-fixed test: a window that
// dies mid-flight re-sends every frame on a fresh session, and without
// the dedup windows the shard re-executes the frames the dead session
// had already applied — balancers double-step and cells double-add, so
// values leak. The kill lands after every STEPN and two CELLNs have been
// applied (the worst case: the dead session already moved balancers AND
// claimed values from two cells). With seq-numbered idempotent frames
// the retried window claims EXACTLY its values: Read() equals the op
// count and the value set is dense.
func TestRetryExactlyOnce(t *testing.T) {
	topo, err := core.New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	cluster, stop := startCluster(t, topo, 1)
	defer stop()
	ctr := cluster.NewCounterPool(1)
	defer ctr.Close()

	first, err := ctr.Inc(0)
	if err != nil {
		t.Fatal(err)
	}

	// Local mirror: the remote walk is deterministic, so the number of
	// exit cells the window touches is exactly the local tally's — the
	// test needs at least three for the kill to land mid-CELLN.
	const k = 10
	local, err := core.New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	local.Traverse(0) // replay the first Inc
	tally := make([]int64, local.OutWidth())
	local.TraverseBatchInto(0, k, tally)
	cells := 0
	for _, c := range tally {
		if c != 0 {
			cells++
		}
	}
	if cells < 3 {
		t.Fatalf("test needs >= 3 touched cells to die mid-CELLN, got %d", cells)
	}

	sess := idleSession(t, ctr)
	sess.conns[0] = newKillOnOp(sess.conns[0], wire.OpCellN2, 2)

	vals, err := ctr.IncBatch(0, k, nil)
	if err != nil {
		t.Fatalf("mid-window connection death surfaced: %v", err)
	}
	vals = append(vals, first)
	if len(vals) != k+1 {
		t.Fatalf("got %d values, want %d", len(vals), k+1)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for i, v := range vals {
		if v != int64(i) {
			t.Fatalf("values gapped or duplicated at %d: %v", i, vals)
		}
	}
	got, err := ctr.Read()
	if err != nil {
		t.Fatal(err)
	}
	if got != k+1 {
		t.Fatalf("Read() = %d, want %d — the retry leaked values", got, k+1)
	}
}

// A kill during the balancer phase (before any cell is touched) must
// also stay exactly-once: without dedup the re-run STEPNs would move the
// balancers twice and skew the exit pattern against the client's local
// split arithmetic.
func TestRetryExactlyOnceMidSteps(t *testing.T) {
	topo, err := core.New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	cluster, stop := startCluster(t, topo, 1)
	defer stop()
	ctr := cluster.NewCounterPool(1)
	defer ctr.Close()
	if _, err := ctr.Inc(0); err != nil {
		t.Fatal(err)
	}
	sess := idleSession(t, ctr)
	sess.conns[0] = newKillOnOp(sess.conns[0], wire.OpStepN2, 2)

	vals, err := ctr.IncBatch(0, 10, nil)
	if err != nil {
		t.Fatalf("mid-step connection death surfaced: %v", err)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for i, v := range vals {
		if v != int64(i+1) {
			t.Fatalf("values gapped or duplicated at %d: %v", i, vals)
		}
	}
	if got, err := ctr.Read(); err != nil || got != 11 {
		t.Fatalf("Read() = (%d, %v), want (11, nil)", got, err)
	}
}

// Client-registration churn must not break a live Counter's
// exactly-once guarantee: its dedup entries are pinned by the bound
// connections, so even DedupClients+ later registrations evict only
// unpinned clients, and a post-churn mid-window kill still retries
// without leaking values.
func TestDedupSurvivesClientChurn(t *testing.T) {
	topo, err := core.New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	cluster, stop := startCluster(t, topo, 1)
	defer stop()
	ctr := cluster.NewCounterPool(1)
	defer ctr.Close()
	if _, err := ctr.Inc(0); err != nil {
		t.Fatal(err)
	}

	// Churn: one raw connection cycling through DedupClients+64 fresh
	// client ids (each HELLO rebinds, unpinning the previous id). A
	// trailing READ round trip waits until the shard has processed the
	// whole burst.
	conn, err := net.Dial("tcp", cluster.addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var burst []byte
	for i := 0; i < DedupClients+64; i++ {
		burst = wire.AppendFrame(burst, &wire.Frame{Op: wire.OpHello, Client: wire.NextClientID()})
	}
	burst = wire.AppendFrame(burst, &wire.Frame{Op: wire.OpRead, ID: 0})
	if _, err := conn.Write(burst); err != nil {
		t.Fatal(err)
	}
	var resp [8]byte
	if _, err := io.ReadFull(conn, resp[:]); err != nil {
		t.Fatal(err)
	}

	// Now the PR's headline scenario again: mid-window kill + retry.
	// If the churn had evicted the Counter's window, the replayed
	// frames would re-execute and the count would overshoot.
	sess := idleSession(t, ctr)
	sess.conns[0] = newKillOnOp(sess.conns[0], wire.OpCellN2, 1)
	if _, err := ctr.IncBatch(0, 10, nil); err != nil {
		t.Fatalf("mid-window connection death surfaced: %v", err)
	}
	if got, err := ctr.Read(); err != nil || got != 11 {
		t.Fatalf("Read() = (%d, %v), want (11, nil) — churn evicted the dedup window", got, err)
	}
}

// The chaos grid: sessions are killed at random frame boundaries while
// a concurrent workload runs, across every (S stripes × pool width × k)
// cell, and the counts must come out EXACT — Σ shard reads equals the
// sequential total, and the claimed values have zero gaps and zero
// duplicates within every stripe's residue class. This is the
// end-to-end exactly-once guarantee under repeated connection loss.
func TestChaosSessionKillExactCountGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var rmu sync.Mutex
	chaos := func(conn net.Conn) net.Conn {
		rmu.Lock()
		allow := 25 + rng.Intn(35)
		rmu.Unlock()
		return newFailAfter(conn, int32(allow))
	}
	for _, S := range []int{1, 2} {
		for _, width := range []int{1, 2} {
			for _, k := range []int{1, 5} {
				t.Run(fmt.Sprintf("S=%d/width=%d/k=%d", S, width, k), func(t *testing.T) {
					topo, err := core.New(4, 8)
					if err != nil {
						t.Fatal(err)
					}
					sc, stop, err := StartShardedCluster(topo, S, 2)
					if err != nil {
						t.Fatal(err)
					}
					defer stop()
					for i := 0; i < S; i++ {
						sc.Cluster(i).SetDialWrapper(chaos)
					}
					ctr := sc.NewCounter(width)
					defer ctr.Close()
					ctr.SetRetryPolicy(12, 30*time.Second)

					const procs, per = 4, 8
					vals := make([][]int64, procs)
					var wg sync.WaitGroup
					for pid := 0; pid < procs; pid++ {
						wg.Add(1)
						go func(pid int) {
							defer wg.Done()
							for i := 0; i < per; i++ {
								var err error
								if k == 1 {
									var v int64
									v, err = ctr.Inc(pid)
									vals[pid] = append(vals[pid], v)
								} else {
									vals[pid], err = ctr.IncBatch(pid+i, k, vals[pid])
								}
								if err != nil {
									t.Errorf("pid %d op %d: %v", pid, i, err)
									return
								}
							}
						}(pid)
					}
					wg.Wait()
					if t.Failed() {
						return
					}
					// Quiesce the chaos for the read side, then verify the
					// exact count and the zero-gap/zero-dup property.
					for i := 0; i < S; i++ {
						sc.Cluster(i).SetDialWrapper(nil)
					}
					total := int64(procs * per * k)
					got, err := ctr.Read()
					if err != nil {
						t.Fatal(err)
					}
					if got != total {
						t.Fatalf("Σ shard reads = %d, want %d", got, total)
					}
					byStripe := make(map[int64][]int64)
					count := 0
					for _, vs := range vals {
						for _, v := range vs {
							byStripe[v%int64(S)] = append(byStripe[v%int64(S)], v)
							count++
						}
					}
					if int64(count) != total {
						t.Fatalf("collected %d values, want %d", count, total)
					}
					for s, vs := range byStripe {
						sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
						for j, v := range vs {
							if want := int64(j)*int64(S) + s; v != want {
								t.Fatalf("stripe %d gapped or duplicated at %d: got %d, want %d",
									s, j, v, want)
							}
						}
					}
				})
			}
		}
	}
}
