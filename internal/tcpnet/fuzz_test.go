package tcpnet

import (
	"bytes"
	"io"
	"testing"
)

// FuzzFrameCodec holds the wire codec to its canonical-encoding
// contract across both protocol versions: any byte stream decodes into
// a (possibly empty) sequence of frames such that re-encoding each
// frame reproduces exactly the bytes it was decoded from, and decoding
// never consumes payload bytes for an unknown op. This is the property
// that lets the server tell v1 frames from seq-numbered v2 frames by op
// byte alone.
func FuzzFrameCodec(f *testing.F) {
	seed := func(fr *frame) {
		f.Add(appendFrame(nil, fr))
	}
	seed(&frame{op: opStep, id: 7})
	seed(&frame{op: opCell, id: 3 | 8<<16})
	seed(&frame{op: opStepN, id: 7, n: -64})
	seed(&frame{op: opCellN, id: 3 | 8<<16, n: 512})
	seed(&frame{op: opRead, id: 5})
	seed(&frame{op: opHello, client: 0xdeadbeef})
	seed(&frame{op: opStep2, id: 7, seq: 1})
	seed(&frame{op: opCell2, id: 3 | 8<<16, seq: 2})
	seed(&frame{op: opStepN2, id: 7, seq: 3, n: -64})
	seed(&frame{op: opCellN2, id: 3 | 8<<16, seq: 4, n: 512})
	// Two frames back to back, and a truncated tail.
	f.Add(append(appendFrame(nil, &frame{op: opHello, client: 9}),
		appendFrame(nil, &frame{op: opStepN2, id: 1, seq: 1, n: 2})...))
	f.Add(appendFrame(nil, &frame{op: opCellN2, id: 1, seq: 1, n: 2})[:9])
	f.Add([]byte{99, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		var buf [maxFrameLen]byte
		var fr frame
		consumed := 0
		for {
			before := r.Len()
			err := readFrame(r, &buf, &fr)
			if err == errUnknownOp {
				// Unknown ops must be rejected after exactly the 5-byte
				// header, before any payload is consumed.
				if got := before - r.Len(); got != 5 {
					t.Fatalf("unknown op consumed %d bytes, want 5", got)
				}
				return
			}
			if err != nil {
				return // EOF or truncation mid-frame ends the stream
			}
			enc := appendFrame(nil, &fr)
			if want := data[consumed : consumed+len(enc)]; !bytes.Equal(enc, want) {
				t.Fatalf("re-encode mismatch at offset %d: frame %+v encodes to %x, stream had %x",
					consumed, fr, enc, want)
			}
			consumed += len(enc)
		}
	})
}

// The codec length table and io plumbing agree: every op's encoded
// frame decodes back to an identical struct.
func TestFrameRoundTrip(t *testing.T) {
	frames := []frame{
		{op: opStep, id: 12},
		{op: opCell, id: 2 | 24<<16},
		{op: opStepN, id: 12, n: 7},
		{op: opCellN, id: 2 | 24<<16, n: -7},
		{op: opRead, id: 9},
		{op: opHello, client: 42},
		{op: opStep2, id: 12, seq: 900},
		{op: opCell2, id: 2 | 24<<16, seq: 901},
		{op: opStepN2, id: 12, seq: 902, n: 7},
		{op: opCellN2, id: 2 | 24<<16, seq: 903, n: -7},
	}
	var stream []byte
	for i := range frames {
		stream = appendFrame(stream, &frames[i])
	}
	r := bytes.NewReader(stream)
	var buf [maxFrameLen]byte
	for i := range frames {
		var got frame
		if err := readFrame(r, &buf, &got); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got != frames[i] {
			t.Fatalf("frame %d: decoded %+v, want %+v", i, got, frames[i])
		}
	}
	if err := readFrame(r, &buf, &frame{}); err != io.EOF {
		t.Fatalf("trailing read = %v, want io.EOF", err)
	}
}
