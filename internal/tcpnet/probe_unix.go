//go:build unix

package tcpnet

import (
	"net"
	"syscall"
)

// connDead reports whether an idle connection is no longer usable for a
// flight, via a nonblocking MSG_PEEK — no byte leaves the machine, so
// the checkout health probe costs no round trip and no RPCs. On an
// idle, in-sync session the socket has nothing to read (EAGAIN →
// alive); a peer that closed or reset the connection shows EOF or an
// error, and stray readable bytes mean a desynced request/response
// stream — both dead. Wrapped connections that hide the raw socket
// (fault-injection test wrappers) are assumed alive; mid-flight
// failures still catch those.
func connDead(conn net.Conn) bool {
	sc, ok := conn.(syscall.Conn)
	if !ok {
		return false
	}
	rc, err := sc.SyscallConn()
	if err != nil {
		return true
	}
	dead := false
	rerr := rc.Read(func(fd uintptr) bool {
		var b [1]byte
		n, _, err := syscall.Recvfrom(int(fd), b[:], syscall.MSG_PEEK|syscall.MSG_DONTWAIT)
		switch {
		case err == syscall.EAGAIN || err == syscall.EWOULDBLOCK || err == syscall.EINTR:
			// Nothing pending: alive and in sync.
		case err != nil:
			dead = true // reset or other hard error
		case n == 0:
			dead = true // orderly FIN
		default:
			dead = true // stray reply bytes: desynced stream
		}
		return true // never wait for readiness
	})
	return dead || rerr != nil
}
