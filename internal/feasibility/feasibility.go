// Package feasibility implements the Aharonson–Attiya impossibility
// condition discussed in §1.4.2 of the paper (ref [1]): a counting (indeed
// smoothing) network with output width t cannot be constructed from
// balancers whose output widths are b_1..b_k if some prime factor p of t
// divides none of the b_i. The package provides the arithmetic test and a
// structural audit that checks a concrete network against the condition —
// every constructible network in this repository passes by construction.
package feasibility

import (
	"fmt"
	"sort"

	"repro/internal/network"
)

// PrimeFactors returns the distinct prime factors of n >= 2 in increasing
// order. It returns nil for n < 2.
func PrimeFactors(n int) []int {
	if n < 2 {
		return nil
	}
	var out []int
	for p := 2; p*p <= n; p++ {
		if n%p == 0 {
			out = append(out, p)
			for n%p == 0 {
				n /= p
			}
		}
	}
	if n > 1 {
		out = append(out, n)
	}
	return out
}

// Constructible reports whether the necessary Aharonson–Attiya condition
// holds for building a counting network of output width t from balancers
// with the given output widths: every prime factor of t must divide at
// least one balancer output width. (The condition is necessary, not
// sufficient.) It returns the first offending prime, or 0.
func Constructible(t int, balancerOuts []int) (ok bool, offendingPrime int) {
	if t < 1 {
		return false, 0
	}
	for _, p := range PrimeFactors(t) {
		divides := false
		for _, b := range balancerOuts {
			if b > 0 && b%p == 0 {
				divides = true
				break
			}
		}
		if !divides {
			return false, p
		}
	}
	return true, 0
}

// AuditNetwork checks a concrete network against the condition using its
// actual balancer arities, returning an error naming the offending prime
// if the network's own output width is incompatible with its balancer
// inventory. A counting network that verified correct will always pass;
// the audit is useful when prototyping new constructions with the Builder.
func AuditNetwork(n *network.Network) error {
	outs := balancerOutWidths(n)
	if ok, p := Constructible(n.OutWidth(), outs); !ok {
		return fmt.Errorf(
			"feasibility: output width %d has prime factor %d dividing no balancer output width %v (Aharonson–Attiya); the network cannot be counting",
			n.OutWidth(), p, outs)
	}
	return nil
}

// balancerOutWidths returns the distinct balancer output widths of n.
func balancerOutWidths(n *network.Network) []int {
	set := map[int]bool{}
	for i := 0; i < n.Size(); i++ {
		set[n.Node(i).Out()] = true
	}
	out := make([]int, 0, len(set))
	for w := range set {
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}
