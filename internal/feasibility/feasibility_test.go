package feasibility

import (
	"testing"

	"repro/internal/bitonic"
	"repro/internal/core"
	"repro/internal/merge"
	"repro/internal/network"
)

func TestPrimeFactors(t *testing.T) {
	cases := []struct {
		n    int
		want []int
	}{
		{1, nil}, {0, nil}, {2, []int{2}}, {12, []int{2, 3}},
		{16, []int{2}}, {30, []int{2, 3, 5}}, {97, []int{97}},
		{49, []int{7}}, {360, []int{2, 3, 5}},
	}
	for _, c := range cases {
		got := PrimeFactors(c.n)
		if len(got) != len(c.want) {
			t.Errorf("PrimeFactors(%d) = %v, want %v", c.n, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("PrimeFactors(%d) = %v, want %v", c.n, got, c.want)
			}
		}
	}
}

func TestConstructible(t *testing.T) {
	cases := []struct {
		t     int
		bals  []int
		ok    bool
		prime int
	}{
		{8, []int{2}, true, 0},      // powers of two from (·,2)
		{6, []int{2}, false, 3},     // 3 | 6 but 3 ∤ 2 — the classic impossibility
		{6, []int{2, 3}, true, 0},   // a (·,3)-balancer fixes it
		{12, []int{2, 6}, true, 0},  // 6 covers the 3
		{30, []int{2, 3}, false, 5}, //
		{30, []int{10, 3}, true, 0}, //
		{7, []int{2, 4}, false, 7},  //
		{16, []int{4, 2}, true, 0},  //
		{0, []int{2}, false, 0},     // nonsense width
	}
	for _, c := range cases {
		ok, p := Constructible(c.t, c.bals)
		if ok != c.ok || p != c.prime {
			t.Errorf("Constructible(%d, %v) = (%v, %d), want (%v, %d)",
				c.t, c.bals, ok, p, c.ok, c.prime)
		}
	}
}

// Every network in this repository satisfies the necessary condition.
func TestRepositoryNetworksPass(t *testing.T) {
	nets := []func() (*network.Network, error){
		func() (*network.Network, error) { return core.New(8, 16) },
		func() (*network.Network, error) { return core.New(4, 12) }, // (2,6)-balancers
		func() (*network.Network, error) { return bitonic.New(16) },
		func() (*network.Network, error) { return merge.New(16, 4) },
	}
	for _, build := range nets {
		n, err := build()
		if err != nil {
			t.Fatal(err)
		}
		if err := AuditNetwork(n); err != nil {
			t.Errorf("%s: %v", n.Name(), err)
		}
	}
}

// A hand-built network with output width 6 using only (2,2)-balancers
// violates the condition and the audit must say so.
func TestAuditDetectsImpossibleWidth(t *testing.T) {
	b, in := network.NewBuilder("bad6", 6)
	o0 := b.Balancer([]network.Port{in[0], in[1]}, 2)
	o1 := b.Balancer([]network.Port{in[2], in[3]}, 2)
	o2 := b.Balancer([]network.Port{in[4], in[5]}, 2)
	n, err := b.Finalize([]network.Port{o0[0], o0[1], o1[0], o1[1], o2[0], o2[1]})
	if err != nil {
		t.Fatal(err)
	}
	if err := AuditNetwork(n); err == nil {
		t.Fatal("width-6 all-(2,2) network passed the audit")
	}
}

// C(4,12) uses (2,6)-balancers: 12 = 2²·3 and 6 covers the 3 — the
// irregular construction is exactly how the paper sidesteps the
// impossibility for non-power-of-two output widths.
func TestIrregularWidthIsCovered(t *testing.T) {
	n, err := core.New(4, 12)
	if err != nil {
		t.Fatal(err)
	}
	if err := AuditNetwork(n); err != nil {
		t.Fatal(err)
	}
}
