package udpnet

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// E28: frame and datagram cost per token of batched UDP pipelines. The
// rpcs/token column must hold the tcpnet E25-E27 floor (1.05 at k=64) —
// the transports send the same frames; UDP just packs them — while
// packets/token shows the MTU-packing win a datagram transport banks on
// top.
func BenchmarkUDPCounterBatch(b *testing.B) {
	for _, k := range []int{64, 512} {
		b.Run(fmt.Sprintf("CWT8x24/k=%d", k), func(b *testing.B) {
			topo, err := core.New(8, 24)
			if err != nil {
				b.Fatal(err)
			}
			cluster, stop, err := StartCluster(topo, 3)
			if err != nil {
				b.Fatal(err)
			}
			defer stop()
			ctr := cluster.NewCounterPool(1)
			defer ctr.Close()
			var vals []int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vals, err = ctr.IncBatch(i, k, vals[:0])
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			tokens := float64(b.N) * float64(k)
			b.ReportMetric(float64(ctr.RPCs())/tokens, "rpcs/token")
			b.ReportMetric(float64(ctr.Packets())/tokens, "packets/token")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/tokens, "ns/token")
		})
	}
}

// E28 lossy column: the same pipeline under 10% injected packet loss
// (both directions) plus duplication and reordering — the retransmit
// timer absorbs it all; the retransmit rate is the price.
func BenchmarkUDPCounterBatchLossy(b *testing.B) {
	topo, err := core.New(8, 24)
	if err != nil {
		b.Fatal(err)
	}
	cluster, stop, err := StartCluster(topo, 3)
	if err != nil {
		b.Fatal(err)
	}
	defer stop()
	fastRetransmit(cluster, 25)
	cluster.SetDialWrapper(Faults{Drop: 0.10, Dup: 0.1, Reorder: 0.1, Seed: 42}.Wrapper())
	ctr := cluster.NewCounterPool(1)
	defer ctr.Close()
	var vals []int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vals, err = ctr.IncBatch(i, 64, vals[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	tokens := float64(b.N) * 64
	b.ReportMetric(float64(ctr.RPCs())/tokens, "rpcs/token")
	if p := ctr.Packets(); p > 0 {
		b.ReportMetric(float64(ctr.Retransmits())/float64(p), "retrans/packet")
	}
}

// E30 shard-side row: concurrent sessions against worker-pool shards.
// ReportAllocs pins the zero-allocation claim — after warmup the shard
// pipeline (pooled buffers, recvmmsg/sendmmsg scratch, per-worker
// decode state) and the session batch path allocate nothing per op;
// the allocs/op printed here is the CLIENT side of that claim and the
// shard side shows up as it staying flat as Workers grows.
func BenchmarkUDPShardWorkers(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("CWT8x24/W=%d/k=64", workers), func(b *testing.B) {
			topo, err := core.New(8, 24)
			if err != nil {
				b.Fatal(err)
			}
			cluster, stop, err := StartClusterConfig(topo, 3, ShardConfig{Workers: workers})
			if err != nil {
				b.Fatal(err)
			}
			defer stop()
			sess, err := cluster.NewSession()
			if err != nil {
				b.Fatal(err)
			}
			defer sess.Close()
			var vals []int64
			if vals, err = sess.IncBatch(0, 64, vals[:0]); err != nil {
				b.Fatal(err) // warmup: pools primed, scratch sized
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vals, err = sess.IncBatch(i, 64, vals[:0])
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			tokens := float64(b.N) * 64
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/tokens, "ns/token")
		})
	}
}

// E30 session-side row: the pipelined batch path at depth 1 (the
// stop-and-wait baseline) against depth 4, same worker-pool shards.
// ReportAllocs proves the steady-state 0 allocs/op claim on the
// session batch path — handles, packet buffers and reply scratch are
// all pooled per pipe.
func BenchmarkUDPPipelinedBatch(b *testing.B) {
	for _, depth := range []int{1, 4} {
		b.Run(fmt.Sprintf("CWT8x24/P=%d/k=64", depth), func(b *testing.B) {
			topo, err := core.New(8, 24)
			if err != nil {
				b.Fatal(err)
			}
			cluster, stop, err := StartClusterConfig(topo, 3, ShardConfig{Workers: 4})
			if err != nil {
				b.Fatal(err)
			}
			defer stop()
			cluster.SetPipeline(depth)
			sess, err := cluster.NewSession()
			if err != nil {
				b.Fatal(err)
			}
			defer sess.Close()
			var vals []int64
			if vals, err = sess.IncBatch(0, 64, vals[:0]); err != nil {
				b.Fatal(err) // warmup: pipes spun up, handle pools primed
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vals, err = sess.IncBatch(i, 64, vals[:0])
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			tokens := float64(b.N) * 64
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/tokens, "ns/token")
		})
	}
}

// E28 sharded row: pid-striped UDP fleets hold the per-stripe floor
// like tcpnet's E26.
func BenchmarkUDPShardedClusterIncBatch(b *testing.B) {
	for _, S := range []int{1, 2} {
		b.Run(fmt.Sprintf("CWT8x24/S=%d/k=64", S), func(b *testing.B) {
			topo, err := core.New(8, 24)
			if err != nil {
				b.Fatal(err)
			}
			sc, stop, err := StartShardedCluster(topo, S, 3)
			if err != nil {
				b.Fatal(err)
			}
			defer stop()
			ctr := sc.NewCounter(1)
			defer ctr.Close()
			var vals []int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vals, err = ctr.IncBatch(i, 64, vals[:0])
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			tokens := float64(b.N) * 64
			b.ReportMetric(float64(ctr.RPCs())/tokens, "rpcs/token")
		})
	}
}
