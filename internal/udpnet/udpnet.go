// Package udpnet deploys a counting network across UDP servers — the
// datagram sibling of internal/tcpnet, for fabrics where a stream
// transport is too heavy or too slow to set up: balancers are
// partitioned across shard servers exactly as in tcpnet, but a balancer
// access is one request/response datagram exchange, and the transport
// delivers packets late, duplicated, reordered, or not at all.
//
// What makes an unreliable transport workable is the exactly-once
// machinery protocol v2 already built for tcpnet's retry path: every
// mutating frame carries a client id (HELLO) and a monotone sequence
// number, and each shard keeps bounded per-client dedup windows
// (wire.Dedup) replaying recorded replies for already-applied
// sequences. Over TCP that machinery absorbs a rare connection death;
// over UDP it IS the reliability layer — the client retransmits an
// unacknowledged request packet under a jittered exponential timer
// (wire.Backoff), and however many copies arrive, in whatever order,
// each frame executes exactly once and every copy of the reply is
// identical.
//
// # Packets
//
// A request datagram is an 8-byte request id followed by canonically
// encoded frames (wire.AppendPacket): a HELLO binding the packet to the
// client's dedup windows, then seq-numbered v2 mutating frames and/or
// READ frames, at most wire.MaxDatagram bytes in all. The response
// echoes the request id followed by one 8-byte value per non-HELLO
// frame, in request order — the id is how a client matches replies to
// (possibly retransmitted, possibly reordered) requests, and the dedup
// replay is why a response regenerated for a duplicate request is
// bit-identical to the original.
//
// Because a datagram carries several frames, a batched pipeline costs
// fewer PACKETS than tcpnet costs round trips: the session walks the
// topology layer by layer (balancers within a layer never feed each
// other), packs each layer's STEPN frames per owning shard into one
// datagram, and packs the whole exit-cell phase the same way. The
// per-FRAME bill — rpcs, the unit E25-E27 price tcpnet in — is
// identical by construction: one STEPN per balancer touched, one CELLN
// per exit wire touched.
//
// Unlike tcpnet there is no v1 session: stateless mutating frames
// cannot be retransmitted safely, so a shard drops any packet carrying
// a v1 mutating op (READ, which is idempotent, is the one stateless op
// served). A malformed or violating packet is dropped whole, without a
// reply — the datagram analogue of tcpnet dropping the connection.
package udpnet

import (
	"encoding/binary"
	"math"
	"net"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/balancer"
	"repro/internal/ctlplane"
	"repro/internal/network"
	"repro/internal/wire"
)

// ShardConfig tunes a shard server; the zero value is the production
// default (wire's DedupWindow/DedupClients bounds).
type ShardConfig struct {
	// Dedup sizes the per-client exactly-once windows; zero fields take
	// the wire defaults. The window is the retransmit horizon: a late
	// duplicate is answered from the record as long as fewer than
	// Window newer frames from the same client landed in between.
	Dedup wire.DedupConfig
}

// Shard is one balancer server: it owns the state of the balancers and
// counter cells assigned to it and serves packed v2 frames over UDP,
// deduplicating every mutating frame per client. Packets are processed
// serially by one goroutine, so frames within a packet apply in order.
type Shard struct {
	conn  *net.UDPConn
	bals  map[int32]*balancer.PQ
	cells map[int32]*atomic.Int64
	dedup *wire.Dedup
	done  chan struct{}
	once  sync.Once // Close idempotency
	wg    sync.WaitGroup

	// Control-plane state: the shard's slot in the partition (for
	// /status), its registry of read-side metric views (for /metrics),
	// and bare atomics the packet loop bumps. busy is set for the span
	// of one packet's processing — the loop is serial, so !busy is the
	// shard's quiescence signal.
	index   int
	shards  int
	netName string
	reg     *ctlplane.Registry
	packets atomic.Int64
	frames  atomic.Int64
	drops   atomic.Int64
	busy    atomic.Bool
}

// StartShard launches a shard on addr (use "127.0.0.1:0" for tests)
// with the default configuration. The shard owns every network node
// with id ≡ index (mod shards) and every output-wire cell with
// wire ≡ index (mod shards); cells are initialized to their wire index
// per §1.1 — the same partitioning as tcpnet.StartShard.
func StartShard(addr string, topo *network.Network, index, shards int) (*Shard, error) {
	return StartShardConfig(addr, topo, index, shards, ShardConfig{})
}

// StartShardConfig is StartShard with per-deployment tuning — most
// importantly the dedup-window sizing, which bounds how late a
// retransmitted duplicate can arrive and still be replayed rather than
// re-executed.
func StartShardConfig(addr string, topo *network.Network, index, shards int, cfg ShardConfig) (*Shard, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, err
	}
	s := &Shard{
		conn:    conn,
		bals:    make(map[int32]*balancer.PQ),
		cells:   make(map[int32]*atomic.Int64),
		dedup:   wire.NewDedup(cfg.Dedup),
		done:    make(chan struct{}),
		index:   index,
		shards:  shards,
		netName: topo.Name(),
		reg:     ctlplane.NewRegistry(),
	}
	labels := []ctlplane.Label{{Key: "transport", Value: "udp"}, {Key: "shard", Value: strconv.Itoa(index)}}
	s.reg.Counter(wire.MetricShardFrames, wire.HelpShardFrames, s.frames.Load, labels...)
	s.reg.Counter(wire.MetricShardPackets, wire.HelpShardPackets, s.packets.Load, labels...)
	s.reg.Counter(wire.MetricShardDrops, wire.HelpShardDrops, s.drops.Load, labels...)
	s.dedup.RegisterMetrics(s.reg, labels...)
	for id := 0; id < topo.Size(); id++ {
		if id%shards == index {
			nd := topo.Node(id)
			s.bals[int32(id)] = balancer.NewInit(nd.In(), nd.Out(), nd.Balancer().Init())
		}
	}
	for w := 0; w < topo.OutWidth(); w++ {
		if w%shards == index {
			c := &atomic.Int64{}
			c.Store(int64(w))
			s.cells[int32(w)] = c
		}
	}
	s.wg.Add(1)
	go s.serve()
	return s, nil
}

// Addr returns the shard's listening address.
func (s *Shard) Addr() string { return s.conn.LocalAddr().String() }

// Close stops the shard; a request in flight when the socket closes is
// simply never answered, which to its client is one more lost packet.
// Idempotent, so a signal-driven drain hook can race a manual shutdown.
func (s *Shard) Close() {
	s.once.Do(func() {
		close(s.done)
		s.conn.Close()
	})
	s.wg.Wait()
}

// ShardStatus is a shard server's /status document.
type ShardStatus struct {
	Transport string `json:"transport"`
	Addr      string `json:"addr"`
	Shard     int    `json:"shard"`  // this server's index in the partition
	Shards    int    `json:"shards"` // servers the topology is partitioned across
	Network   string `json:"network"`
	Balancers int    `json:"balancers"` // balancer nodes this server owns
	Cells     int    `json:"cells"`     // exit cells this server owns
}

// Health implements ctlplane.Source: the shard is live until Close.
// The packet loop is serial, so quiescence is simply "not mid-packet";
// a UDP shard holds no client connections to wait out.
func (s *Shard) Health() ctlplane.Health {
	select {
	case <-s.done:
		return ctlplane.Health{Detail: "closed"}
	default:
	}
	if s.busy.Load() {
		return ctlplane.Health{Live: true, Detail: "processing a packet"}
	}
	return ctlplane.Health{Live: true, Quiescent: true, Detail: "idle between packets"}
}

// Status implements ctlplane.Source with the shard's topology slot.
func (s *Shard) Status() any {
	return ShardStatus{
		Transport: "udp",
		Addr:      s.Addr(),
		Shard:     s.index,
		Shards:    s.shards,
		Network:   s.netName,
		Balancers: len(s.bals),
		Cells:     len(s.cells),
	}
}

// Gather implements ctlplane.Source, evaluating the shard's registered
// metric views (packets, frames, drops, dedup table state).
func (s *Shard) Gather() []ctlplane.Sample { return s.reg.Gather() }

// serve is the shard's packet loop: read a datagram, decode it whole,
// validate it whole, execute (deduplicated), reply to the sender.
// Malformed or violating packets are dropped without a reply.
func (s *Shard) serve() {
	defer s.wg.Done()
	buf := make([]byte, 65536)
	var frames []wire.Frame
	var resp []byte
	for {
		n, raddr, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				continue // transient (e.g. a surfaced ICMP error)
			}
		}
		s.busy.Store(true)
		s.packets.Add(1)
		reqid, fs, err := wire.DecodePacket(buf[:n], frames[:0])
		frames = fs
		if err != nil {
			s.drops.Add(1)
			s.busy.Store(false)
			continue
		}
		resp = s.process(resp[:0], reqid, fs)
		if resp == nil {
			s.drops.Add(1)
			s.busy.Store(false)
			continue
		}
		s.frames.Add(int64(len(fs)))
		s.conn.WriteToUDP(resp, raddr)
		s.busy.Store(false)
	}
}

// process validates and executes one decoded packet, returning the
// encoded response or nil to drop the packet. Validation runs BEFORE
// any state changes: on a datagram transport a violation cannot "drop
// the rest of the stream", so a packet that would fail partway is
// refused whole instead of half-applying.
func (s *Shard) process(dst []byte, reqid uint64, frames []wire.Frame) []byte {
	helloed := false
	for i := range frames {
		f := &frames[i]
		switch f.Op {
		case wire.OpHello:
			helloed = true
		case wire.OpRead:
			if _, ok := s.cells[f.ID]; !ok {
				return nil
			}
		case wire.OpStep2:
			if !helloed {
				return nil
			}
			if _, ok := s.bals[f.ID]; !ok {
				return nil
			}
		case wire.OpStepN2:
			if !helloed || f.N == 0 || f.N == math.MinInt64 {
				return nil
			}
			if _, ok := s.bals[f.ID]; !ok {
				return nil
			}
		case wire.OpCell2:
			if !helloed {
				return nil
			}
			if _, ok := s.cells[f.ID&0xffff]; !ok {
				return nil
			}
		case wire.OpCellN2:
			if !helloed || f.N == 0 || f.N == math.MinInt64 {
				return nil
			}
			if _, ok := s.cells[f.ID&0xffff]; !ok {
				return nil
			}
		default:
			// v1 mutating frames are not retransmit-safe: refused.
			return nil
		}
	}
	dst = wire.AppendPacket(dst, reqid, nil)
	var cl *wire.DedupEntry
	defer func() {
		if cl != nil {
			s.dedup.Release(cl)
		}
	}()
	var vb [8]byte
	for i := range frames {
		f := &frames[i]
		var val int64
		switch f.Op {
		case wire.OpHello:
			if cl != nil {
				s.dedup.Release(cl)
			}
			cl = s.dedup.Bind(f.Client)
			continue
		case wire.OpRead:
			val = s.cells[f.ID].Load()
		default:
			v, ok := cl.Do(f.Seq, func() (int64, bool) { return s.apply(f) })
			if !ok {
				return nil
			}
			val = v
		}
		binary.BigEndian.PutUint64(vb[:], uint64(val))
		dst = append(dst, vb[:]...)
	}
	return dst
}

// apply executes one validated v2 mutating frame against the shard's
// balancer and cell state — the same semantics as the tcpnet shard,
// behind the same dedup wrapper.
func (s *Shard) apply(f *wire.Frame) (int64, bool) {
	switch f.Op {
	case wire.OpStep2:
		return int64(s.bals[f.ID].Step()), true
	case wire.OpStepN2:
		b := s.bals[f.ID]
		// One transition for the whole group: its first sequence index
		// comes back; the client folds the split arithmetic.
		if f.N > 0 {
			return b.StepN(f.N), true
		}
		return b.StepAntiN(-f.N), true
	case wire.OpCell2, wire.OpCellN2:
		// The stride (output width t) rides in the upper bits of the id
		// to keep the protocol stateless: id = wire | stride<<16, as in
		// tcpnet.
		c := s.cells[f.ID&0xffff]
		stride := int64(f.ID >> 16)
		if f.Op == wire.OpCell2 {
			return c.Add(stride) - stride, true
		}
		return c.Add(stride * f.N), true
	}
	return 0, false
}
