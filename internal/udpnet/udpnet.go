// Package udpnet deploys a counting network across UDP servers — the
// datagram sibling of internal/tcpnet, for fabrics where a stream
// transport is too heavy or too slow to set up: balancers are
// partitioned across shard servers exactly as in tcpnet, but a balancer
// access is one request/response datagram exchange, and the transport
// delivers packets late, duplicated, reordered, or not at all.
//
// What makes an unreliable transport workable is the exactly-once
// machinery protocol v2 already built for tcpnet's retry path: every
// mutating frame carries a client id (HELLO) and a monotone sequence
// number, and each shard keeps bounded per-client dedup windows
// (wire.Dedup) replaying recorded replies for already-applied
// sequences. Over TCP that machinery absorbs a rare connection death;
// over UDP it IS the reliability layer — the client retransmits an
// unacknowledged request packet under a jittered exponential timer
// (wire.Backoff), and however many copies arrive, in whatever order,
// each frame executes exactly once and every copy of the reply is
// identical.
//
// # Packets
//
// A request datagram is an 8-byte request id followed by canonically
// encoded frames (wire.AppendPacket): a HELLO binding the packet to the
// client's dedup windows, then seq-numbered v2 mutating frames and/or
// READ frames, at most wire.MaxDatagram bytes in all. The response
// echoes the request id followed by one 8-byte value per non-HELLO
// frame, in request order — the id is how a client matches replies to
// (possibly retransmitted, possibly reordered) requests, and the dedup
// replay is why a response regenerated for a duplicate request is
// bit-identical to the original.
//
// Because a datagram carries several frames, a batched pipeline costs
// fewer PACKETS than tcpnet costs round trips: the session walks the
// topology layer by layer (balancers within a layer never feed each
// other), packs each layer's STEPN frames per owning shard into one
// datagram, and packs the whole exit-cell phase the same way. The
// per-FRAME bill — rpcs, the unit E25-E27 price tcpnet in — is
// identical by construction: one STEPN per balancer touched, one CELLN
// per exit wire touched.
//
// Unlike tcpnet there is no v1 session: stateless mutating frames
// cannot be retransmitted safely, so a shard drops any packet carrying
// a v1 mutating op (READ, which is idempotent, is the one stateless op
// served). A malformed or violating packet is dropped whole, without a
// reply — the datagram analogue of tcpnet dropping the connection.
package udpnet

import (
	"encoding/binary"
	"math"
	"net"
	"net/netip"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/balancer"
	"repro/internal/ctlplane"
	"repro/internal/network"
	"repro/internal/wire"
)

// ShardConfig tunes a shard server; the zero value is the production
// default (wire's DedupWindow/DedupClients bounds, one worker, bursts
// of DefaultShardBatch packets per syscall).
type ShardConfig struct {
	// Dedup sizes the per-client exactly-once windows; zero fields take
	// the wire defaults. The window is the retransmit horizon: a late
	// duplicate is answered from the record as long as fewer than
	// Window newer frames from the same client landed in between.
	Dedup wire.DedupConfig

	// Workers is the packet-processing pool width; <= 0 means 1 (the
	// serial behaviour every earlier E-series number was taken at).
	// Parallelism is safe because the state a packet touches is either
	// atomic (balancer words, counter cells) or serialized per client
	// by the dedup window's own lock — frames from one client never
	// race each other, and frames from different clients never needed
	// an order in the first place (that is the paper's whole point).
	Workers int

	// Batch bounds how many datagrams one receive or send syscall moves
	// (recvmmsg/sendmmsg on linux; the portable fallback reads one per
	// call but still coalesces sends per wakeup). <= 0 means
	// DefaultShardBatch.
	Batch int
}

// DefaultShardBatch is the default per-syscall datagram burst bound.
const DefaultShardBatch = 16

// shardBufSize is the pooled packet-buffer size: a protocol-abiding
// request is at most wire.MaxDatagram bytes and the widest possible
// response (a full datagram of READ frames) stays under 2 KiB, so one
// pool serves both directions. Anything larger is truncated by the
// receive path and dropped as malformed.
const shardBufSize = 2048

// bufPool recycles fixed-size packet buffers between the receive,
// process and send stages, so the steady-state shard hot path allocates
// nothing per packet.
type bufPool struct{ p sync.Pool }

func newBufPool() *bufPool {
	bp := &bufPool{}
	bp.p.New = func() any { return new([shardBufSize]byte) }
	return bp
}

func (bp *bufPool) get() *[shardBufSize]byte  { return bp.p.Get().(*[shardBufSize]byte) }
func (bp *bufPool) put(b *[shardBufSize]byte) { bp.p.Put(b) }

// pkt is one datagram moving through the shard pipeline: a pooled
// buffer, the byte count (negative marks a truncated receive, dropped
// by the dispatcher), and the peer address as an allocation-free
// netip.AddrPort value.
type pkt struct {
	buf *[shardBufSize]byte
	n   int
	ap  netip.AddrPort
}

// shardIO is the syscall boundary the shard reads and writes bursts
// through. The linux implementation (mmsg_linux.go) moves whole bursts
// per recvmmsg/sendmmsg call; the portable fallback (mmsg_other.go)
// reads one datagram per call and writes each send of a burst
// individually. Both report how many packets each call moved so the
// batched-syscall metrics stay comparable across builds.
type shardIO interface {
	// readBatch fills up to len(dst) packets with pooled buffers and
	// returns how many arrived; it blocks until at least one does.
	readBatch(dst []pkt, pool *bufPool) (int, error)
	// writeBatch sends every packet in the burst; buffer ownership
	// stays with the caller.
	writeBatch(ps []pkt) error
}

// loopIO is the portable shardIO: one datagram per receive call, one
// send syscall per reply. It is the whole story on non-linux builds
// (and under -tags countnet_nommsg) and the last-resort fallback on
// linux when the raw descriptor is unavailable.
type loopIO struct {
	conn *net.UDPConn
}

func (io *loopIO) readBatch(dst []pkt, pool *bufPool) (int, error) {
	buf := pool.get()
	n, ap, err := io.conn.ReadFromUDPAddrPort(buf[:])
	if err != nil {
		pool.put(buf)
		return 0, err
	}
	dst[0] = pkt{buf: buf, n: n, ap: ap}
	return 1, nil
}

func (io *loopIO) writeBatch(ps []pkt) error {
	var firstErr error
	for i := range ps {
		if _, err := io.conn.WriteToUDPAddrPort(ps[i].buf[:ps[i].n], ps[i].ap); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Shard is one balancer server: it owns the state of the balancers and
// counter cells assigned to it and serves packed v2 frames over UDP,
// deduplicating every mutating frame per client. Packets flow through a
// three-stage pipeline — a reader draining the socket in bursts into
// pooled buffers, a worker pool decoding/validating/executing, and a
// sender writing reply bursts — so cross-client packets process in
// parallel while frames within one packet still apply in order (one
// worker owns the whole packet).
type Shard struct {
	conn    *net.UDPConn
	bals    map[int32]*balancer.PQ
	cells   map[int32]*atomic.Int64
	dedup   *wire.Dedup
	done    chan struct{}
	once    sync.Once // Close idempotency
	wg      sync.WaitGroup
	workers int
	batch   int
	pool    *bufPool
	io      shardIO
	workq   chan pkt
	sendq   chan pkt

	// Control-plane state: the shard's slot in the partition (for
	// /status), its registry of read-side metric views (for /metrics),
	// and bare atomics the pipeline stages bump. inflight counts
	// packets accepted by the reader and not yet replied or dropped —
	// zero is the shard's quiescence signal now that processing is
	// concurrent; busy is the worker-pool occupancy gauge.
	index        int
	shards       int
	netName      string
	reg          *ctlplane.Registry
	packets      atomic.Int64
	frames       atomic.Int64
	drops        atomic.Int64
	inflight     atomic.Int64
	busy         atomic.Int64
	recvBatches  atomic.Int64
	recvBatchPks atomic.Int64
	sendBatches  atomic.Int64
	sendBatchPks atomic.Int64
}

// StartShard launches a shard on addr (use "127.0.0.1:0" for tests)
// with the default configuration. The shard owns every network node
// with id ≡ index (mod shards) and every output-wire cell with
// wire ≡ index (mod shards); cells are initialized to their wire index
// per §1.1 — the same partitioning as tcpnet.StartShard.
func StartShard(addr string, topo *network.Network, index, shards int) (*Shard, error) {
	return StartShardConfig(addr, topo, index, shards, ShardConfig{})
}

// StartShardConfig is StartShard with per-deployment tuning — most
// importantly the dedup-window sizing, which bounds how late a
// retransmitted duplicate can arrive and still be replayed rather than
// re-executed.
func StartShardConfig(addr string, topo *network.Network, index, shards int, cfg ShardConfig) (*Shard, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	batch := cfg.Batch
	if batch < 1 {
		batch = DefaultShardBatch
	}
	s := &Shard{
		conn:    conn,
		bals:    make(map[int32]*balancer.PQ),
		cells:   make(map[int32]*atomic.Int64),
		dedup:   wire.NewDedup(cfg.Dedup),
		done:    make(chan struct{}),
		workers: workers,
		batch:   batch,
		pool:    newBufPool(),
		workq:   make(chan pkt, workers*batch),
		sendq:   make(chan pkt, workers*batch),
		index:   index,
		shards:  shards,
		netName: topo.Name(),
		reg:     ctlplane.NewRegistry(),
	}
	s.io = newShardIO(conn, batch)
	labels := []ctlplane.Label{{Key: "transport", Value: "udp"}, {Key: "shard", Value: strconv.Itoa(index)}}
	s.reg.Counter(wire.MetricShardFrames, wire.HelpShardFrames, s.frames.Load, labels...)
	s.reg.Counter(wire.MetricShardPackets, wire.HelpShardPackets, s.packets.Load, labels...)
	s.reg.Counter(wire.MetricShardDrops, wire.HelpShardDrops, s.drops.Load, labels...)
	s.reg.Gauge(wire.MetricShardWorkers, wire.HelpShardWorkers, func() int64 { return int64(s.workers) }, labels...)
	s.reg.Gauge(wire.MetricShardWorkersBusy, wire.HelpShardWorkersBusy, s.busy.Load, labels...)
	s.reg.Counter(wire.MetricShardRecvBatches, wire.HelpShardRecvBatches, s.recvBatches.Load, labels...)
	s.reg.Counter(wire.MetricShardRecvBatchPackets, wire.HelpShardRecvBatchPackets, s.recvBatchPks.Load, labels...)
	s.reg.Counter(wire.MetricShardSendBatches, wire.HelpShardSendBatches, s.sendBatches.Load, labels...)
	s.reg.Counter(wire.MetricShardSendBatchPackets, wire.HelpShardSendBatchPackets, s.sendBatchPks.Load, labels...)
	s.dedup.RegisterMetrics(s.reg, labels...)
	for id := 0; id < topo.Size(); id++ {
		if id%shards == index {
			nd := topo.Node(id)
			s.bals[int32(id)] = balancer.NewInit(nd.In(), nd.Out(), nd.Balancer().Init())
		}
	}
	for w := 0; w < topo.OutWidth(); w++ {
		if w%shards == index {
			c := &atomic.Int64{}
			c.Store(int64(w))
			s.cells[int32(w)] = c
		}
	}
	var workerWG sync.WaitGroup
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		workerWG.Add(1)
		go func() {
			defer s.wg.Done()
			defer workerWG.Done()
			s.work()
		}()
	}
	// The sender outlives the workers: sendq closes only after the last
	// worker exits, so a reply queued during drain is never lost to a
	// send on a closed channel.
	s.wg.Add(2)
	go func() {
		defer s.wg.Done()
		workerWG.Wait()
		close(s.sendq)
	}()
	go func() {
		defer s.wg.Done()
		s.send()
	}()
	s.wg.Add(1)
	go s.serve()
	return s, nil
}

// Addr returns the shard's listening address.
func (s *Shard) Addr() string { return s.conn.LocalAddr().String() }

// Close stops the shard; a request in flight when the socket closes is
// simply never answered, which to its client is one more lost packet.
// Idempotent, so a signal-driven drain hook can race a manual shutdown.
func (s *Shard) Close() {
	s.once.Do(func() {
		close(s.done)
		s.conn.Close()
	})
	s.wg.Wait()
}

// ShardStatus is a shard server's /status document.
type ShardStatus struct {
	Transport string `json:"transport"`
	Addr      string `json:"addr"`
	Shard     int    `json:"shard"`  // this server's index in the partition
	Shards    int    `json:"shards"` // servers the topology is partitioned across
	Network   string `json:"network"`
	Balancers int    `json:"balancers"` // balancer nodes this server owns
	Cells     int    `json:"cells"`     // exit cells this server owns
}

// Health implements ctlplane.Source: the shard is live until Close.
// Quiescence is "no packet anywhere in the pipeline" — accepted by the
// reader but not yet replied or dropped; a UDP shard holds no client
// connections to wait out.
func (s *Shard) Health() ctlplane.Health {
	select {
	case <-s.done:
		return ctlplane.Health{Detail: "closed"}
	default:
	}
	if s.inflight.Load() > 0 {
		return ctlplane.Health{Live: true, Detail: "processing packets"}
	}
	return ctlplane.Health{Live: true, Quiescent: true, Detail: "idle between packets"}
}

// Status implements ctlplane.Source with the shard's topology slot.
func (s *Shard) Status() any {
	return ShardStatus{
		Transport: "udp",
		Addr:      s.Addr(),
		Shard:     s.index,
		Shards:    s.shards,
		Network:   s.netName,
		Balancers: len(s.bals),
		Cells:     len(s.cells),
	}
}

// Gather implements ctlplane.Source, evaluating the shard's registered
// metric views (packets, frames, drops, dedup table state).
func (s *Shard) Gather() []ctlplane.Sample { return s.reg.Gather() }

// serve is the shard's reader: drain the socket in bursts of up to
// Batch datagrams per syscall into pooled buffers and hand each packet
// to the worker pool. A full work queue applies backpressure here — the
// kernel socket buffer absorbs the burst and drops beyond it, which to
// a client is ordinary datagram loss, absorbed by its retransmit timer.
// Closing the work queue after the socket dies is what drains the
// worker pool down.
func (s *Shard) serve() {
	defer s.wg.Done()
	defer close(s.workq)
	batch := make([]pkt, s.batch)
	for {
		n, err := s.io.readBatch(batch, s.pool)
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				continue // transient (e.g. a surfaced ICMP error)
			}
		}
		s.recvBatches.Add(1)
		s.recvBatchPks.Add(int64(n))
		for i := 0; i < n; i++ {
			p := batch[i]
			batch[i] = pkt{}
			if p.n < 0 || p.n > wire.MaxDatagram {
				// Truncated or over the MaxDatagram request budget:
				// a protocol violation either way, dropped whole like
				// any other malformed packet. Enforcing the budget
				// here also caps the widest possible response (a full
				// datagram of READ frames) under shardBufSize, so a
				// reply can never outgrow its pooled buffer.
				s.packets.Add(1)
				s.drops.Add(1)
				s.pool.put(p.buf)
				continue
			}
			s.inflight.Add(1)
			s.workq <- p
		}
	}
}

// work is one pool worker: decode a packet whole, validate it whole,
// execute it (deduplicated), and queue the encoded response for the
// batched sender. Each worker owns its decode and encode scratch, and
// each packet rides its own pooled buffer end to end — nothing a worker
// touches is shared with another packet in flight, which is what makes
// Workers > 1 safe (and what TestUDPShardWorkersBufferIsolation pins).
func (s *Shard) work() {
	var frames []wire.Frame
	w := newWorkCtx(s)
	for p := range s.workq {
		s.busy.Add(1)
		s.packets.Add(1)
		reqid, fs, err := wire.DecodePacket(p.buf[:p.n], frames[:0])
		frames = fs
		if err != nil {
			s.dropPkt(p)
			continue
		}
		rbuf := s.pool.get()
		resp := s.process(rbuf[:0], reqid, fs, w)
		if resp == nil {
			s.pool.put(rbuf)
			s.dropPkt(p)
			continue
		}
		s.frames.Add(int64(len(fs)))
		s.pool.put(p.buf)
		s.sendq <- pkt{buf: rbuf, n: len(resp), ap: p.ap}
		s.busy.Add(-1)
	}
}

// dropPkt accounts and recycles a packet refused without a reply.
func (s *Shard) dropPkt(p pkt) {
	s.drops.Add(1)
	s.pool.put(p.buf)
	s.inflight.Add(-1)
	s.busy.Add(-1)
}

// send is the reply writer: take one finished response, opportunistically
// drain whatever else the workers have queued (up to the batch bound),
// and write the whole burst in one syscall where the platform allows.
// Latency is never traded away — a lone reply goes out immediately; the
// burst only forms when the shard is busy enough to have one.
func (s *Shard) send() {
	burst := make([]pkt, 0, s.batch)
	for p := range s.sendq {
		burst = append(burst[:0], p)
	drain:
		for len(burst) < s.batch {
			select {
			case q, ok := <-s.sendq:
				if !ok {
					break drain
				}
				burst = append(burst, q)
			default:
				break drain
			}
		}
		s.io.writeBatch(burst)
		s.sendBatches.Add(1)
		s.sendBatchPks.Add(int64(len(burst)))
		for i := range burst {
			s.pool.put(burst[i].buf)
			s.inflight.Add(-1)
			burst[i] = pkt{}
		}
	}
}

// workCtx is one worker's execute thunk for the dedup layer: the
// closure is bound once per worker and reads the current frame through
// w.f — a literal at the Do call site would heap-allocate per mutating
// frame, the single biggest allocation on the old hot path.
type workCtx struct {
	f    *wire.Frame
	exec func() (int64, bool)
}

func newWorkCtx(s *Shard) *workCtx {
	w := &workCtx{}
	w.exec = func() (int64, bool) { return s.apply(w.f) }
	return w
}

// process validates and executes one decoded packet, returning the
// encoded response or nil to drop the packet. Validation runs BEFORE
// any state changes: on a datagram transport a violation cannot "drop
// the rest of the stream", so a packet that would fail partway is
// refused whole instead of half-applying.
func (s *Shard) process(dst []byte, reqid uint64, frames []wire.Frame, w *workCtx) []byte {
	helloed := false
	for i := range frames {
		f := &frames[i]
		switch f.Op {
		case wire.OpHello:
			helloed = true
		case wire.OpRead:
			if _, ok := s.cells[f.ID]; !ok {
				return nil
			}
		case wire.OpStep2:
			if !helloed {
				return nil
			}
			if _, ok := s.bals[f.ID]; !ok {
				return nil
			}
		case wire.OpStepN2:
			if !helloed || f.N == 0 || f.N == math.MinInt64 {
				return nil
			}
			if _, ok := s.bals[f.ID]; !ok {
				return nil
			}
		case wire.OpCell2:
			if !helloed {
				return nil
			}
			if _, ok := s.cells[f.ID&0xffff]; !ok {
				return nil
			}
		case wire.OpCellN2:
			if !helloed || f.N == 0 || f.N == math.MinInt64 {
				return nil
			}
			if _, ok := s.cells[f.ID&0xffff]; !ok {
				return nil
			}
		default:
			// v1 mutating frames are not retransmit-safe: refused.
			return nil
		}
	}
	dst = wire.AppendPacket(dst, reqid, nil)
	var cl *wire.DedupEntry
	defer func() {
		if cl != nil {
			s.dedup.Release(cl)
		}
	}()
	var vb [8]byte
	for i := range frames {
		f := &frames[i]
		var val int64
		switch f.Op {
		case wire.OpHello:
			if cl != nil {
				s.dedup.Release(cl)
			}
			cl = s.dedup.Bind(f.Client)
			continue
		case wire.OpRead:
			val = s.cells[f.ID].Load()
		default:
			w.f = f
			v, ok := cl.Do(f.Seq, w.exec)
			if !ok {
				return nil
			}
			val = v
		}
		binary.BigEndian.PutUint64(vb[:], uint64(val))
		dst = append(dst, vb[:]...)
	}
	return dst
}

// apply executes one validated v2 mutating frame against the shard's
// balancer and cell state — the same semantics as the tcpnet shard,
// behind the same dedup wrapper.
func (s *Shard) apply(f *wire.Frame) (int64, bool) {
	switch f.Op {
	case wire.OpStep2:
		return int64(s.bals[f.ID].Step()), true
	case wire.OpStepN2:
		b := s.bals[f.ID]
		// One transition for the whole group: its first sequence index
		// comes back; the client folds the split arithmetic.
		if f.N > 0 {
			return b.StepN(f.N), true
		}
		return b.StepAntiN(-f.N), true
	case wire.OpCell2, wire.OpCellN2:
		// The stride (output width t) rides in the upper bits of the id
		// to keep the protocol stateless: id = wire | stride<<16, as in
		// tcpnet.
		c := s.cells[f.ID&0xffff]
		stride := int64(f.ID >> 16)
		if f.Op == wire.OpCell2 {
			return c.Add(stride) - stride, true
		}
		return c.Add(stride * f.N), true
	}
	return 0, false
}
