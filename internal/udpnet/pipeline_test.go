package udpnet

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/network"
)

func startClusterCfg(t *testing.T, topo *network.Network, shards int, cfg ShardConfig) *Cluster {
	t.Helper()
	c, stop, err := StartClusterConfig(topo, shards, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stop)
	return c
}

// The pipelining gate: depth>1 sessions — a bounded window of
// outstanding request datagrams per socket, demuxed by request id —
// driven through reorder-heavy fault grids against worker-pool shards,
// and the counts must come out EXACT: Σ shard reads equals the
// sequential total and the claimed values have zero gaps and zero
// duplicates within every stripe's residue class. Reordering is the
// fault pipelining is most exposed to (replies and retransmitted
// duplicates interleave across the whole window, not one exchange),
// so this is the adversarial case for the id-demux path.
func TestUDPPipelineReorderExactCount(t *testing.T) {
	for _, depth := range []int{2, 4} {
		for _, S := range []int{1, 2} {
			t.Run(fmt.Sprintf("depth=%d/S=%d", depth, S), func(t *testing.T) {
				topo, err := core.New(4, 8)
				if err != nil {
					t.Fatal(err)
				}
				sc, stop, err := StartShardedClusterConfig(topo, S, 2, ShardConfig{Workers: 4})
				if err != nil {
					t.Fatal(err)
				}
				defer stop()
				faults := Faults{
					Drop: 0.10, Dup: 0.2, Reorder: 0.35,
					DelayProb: 0.1, Delay: 2 * time.Millisecond,
					Seed: int64(depth*100 + S),
				}
				for i := 0; i < S; i++ {
					fastRetransmit(sc.Cluster(i), 25)
					sc.Cluster(i).SetDialWrapper(faults.Wrapper())
					sc.Cluster(i).SetPipeline(depth)
				}
				ctr := sc.NewCounter(2)
				defer ctr.Close()
				ctr.SetRetryPolicy(10, 60*time.Second)

				const procs, per, k = 4, 4, 8
				vals := make([][]int64, procs)
				var wg sync.WaitGroup
				for pid := 0; pid < procs; pid++ {
					wg.Add(1)
					go func(pid int) {
						defer wg.Done()
						for i := 0; i < per; i++ {
							var err error
							vals[pid], err = ctr.IncBatch(pid+i, k, vals[pid])
							if err != nil {
								t.Errorf("pid %d op %d: %v", pid, i, err)
								return
							}
						}
					}(pid)
				}
				wg.Wait()
				if t.Failed() {
					return
				}
				// Reconcile on fresh fault-free stop-and-wait sessions:
				// whatever the pipelined windows retransmitted, duplicated
				// or reordered, the shards' dedup windows must have
				// absorbed it all.
				total := int64(procs * per * k)
				var got int64
				for i := 0; i < S; i++ {
					sc.Cluster(i).SetDialWrapper(nil)
					sc.Cluster(i).SetPipeline(1)
					sess, err := sc.Cluster(i).NewSession()
					if err != nil {
						t.Fatal(err)
					}
					v, err := sess.Read()
					sess.Close()
					if err != nil {
						t.Fatal(err)
					}
					got += v
				}
				if got != total {
					t.Fatalf("Σ shard reads = %d, want %d (sequential total)", got, total)
				}
				byStripe := make(map[int64][]int64)
				count := 0
				for _, vs := range vals {
					for _, v := range vs {
						byStripe[v%int64(S)] = append(byStripe[v%int64(S)], v)
						count++
					}
				}
				if int64(count) != total {
					t.Fatalf("collected %d values, want %d", count, total)
				}
				for s, vs := range byStripe {
					sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
					for j, v := range vs {
						if want := int64(j)*int64(S) + s; v != want {
							t.Fatalf("stripe %d gapped or duplicated at %d: got %d, want %d",
								s, j, v, want)
						}
					}
				}
				if ctr.Retransmits() == 0 {
					t.Fatal("pipelined chaos run recorded zero retransmissions — faults not exercised")
				}
			})
		}
	}
}

// Pipelining must not change the per-frame bill: at zero loss a
// depth-4 session sends exactly the frames a stop-and-wait session
// sends — same packets, same rpcs — just more of them concurrently.
// This is what keeps the E25-E28 rpcs/token floors valid at any depth.
func TestUDPPipelineRPCFloorMatchesSerial(t *testing.T) {
	topo, err := core.New(8, 24)
	if err != nil {
		t.Fatal(err)
	}
	bill := func(depth int) (rpcs, packets, vals int64) {
		t.Helper()
		cluster := startClusterCfg(t, topo, 3, ShardConfig{Workers: 4})
		cluster.SetPipeline(depth)
		sess, err := cluster.NewSession()
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		vs, err := sess.IncBatch(0, 64, nil)
		if err != nil {
			t.Fatal(err)
		}
		return sess.RPCs(), sess.Packets(), int64(len(vs))
	}
	r1, p1, v1 := bill(1)
	r4, p4, v4 := bill(4)
	if v1 != 64 || v4 != 64 {
		t.Fatalf("IncBatch returned %d and %d values, want 64", v1, v4)
	}
	if r1 != r4 {
		t.Fatalf("rpcs diverged: serial %d, depth-4 %d — pipelining changed the frame bill", r1, r4)
	}
	if p1 != p4 {
		t.Fatalf("packets diverged: serial %d, depth-4 %d — pipelining changed the packing", p1, p4)
	}
}

// The shared-buffer regression gate: before the worker pool, serve()
// reused ONE receive buffer across iterations and handed it to the
// processing path — with Workers > 1 that is a data race (a worker
// decoding packet n while the reader overwrites it with packet n+1)
// and the race detector fails the unpooled design on this exact
// workload. The pooled pipeline gives every packet its own buffer end
// to end: concurrent clients against a 4-worker shard must stay exact
// with -race silent.
func TestUDPShardWorkersBufferIsolation(t *testing.T) {
	topo, err := core.New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	cluster := startClusterCfg(t, topo, 1, ShardConfig{Workers: 4, Batch: 4})

	const procs, per, k = 8, 4, 8
	var wg sync.WaitGroup
	errs := make([]error, procs)
	for pid := 0; pid < procs; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			sess, err := cluster.NewSession()
			if err != nil {
				errs[pid] = err
				return
			}
			defer sess.Close()
			for i := 0; i < per; i++ {
				if _, err := sess.IncBatch(pid+i, k, nil); err != nil {
					errs[pid] = err
					return
				}
				if _, err := sess.Read(); err != nil {
					errs[pid] = err
					return
				}
			}
		}(pid)
	}
	wg.Wait()
	for pid, err := range errs {
		if err != nil {
			t.Fatalf("pid %d: %v", pid, err)
		}
	}
	sess, err := cluster.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	total, err := sess.Read()
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(procs * per * k); total != want {
		t.Fatalf("Read = %d, want %d — packets corrupted or double-applied under workers", total, want)
	}
}
