//go:build !linux || countnet_nommsg || !(amd64 || arm64)

package udpnet

import "net"

// Portable build variant: one datagram per syscall (loopIO, defined
// unconditionally in udpnet.go since the linux build also keeps it as
// a last-resort fallback). The pipeline above it is identical — pooled
// buffers, worker dispatch, burst-draining sender — so the only thing
// this variant gives up is the syscall amortization itself. Kept
// compiling on every platform by the `go vet -tags countnet_nommsg`
// gate in `make check` / CI, so the fallback cannot rot while linux
// hosts get the mmsg path.

// newShardIO returns the portable single-syscall implementation.
func newShardIO(conn *net.UDPConn, batch int) shardIO {
	return &loopIO{conn: conn}
}

// segSender writes bursts of request datagrams (each bufs[i] one
// datagram) on a connected client socket — the session pipeline's
// flush primitive. The portable variant is a plain write loop; conn
// may be fault-wrapped, so nothing here assumes a real *net.UDPConn.
type segSender struct {
	conn net.Conn
}

func newSegSender(conn net.Conn) *segSender { return &segSender{conn: conn} }

func (ss *segSender) send(bufs [][]byte) error {
	for _, b := range bufs {
		if _, err := ss.conn.Write(b); err != nil {
			return err
		}
	}
	return nil
}
