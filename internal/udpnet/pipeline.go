package udpnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/wire"
)

// Pipelined sessions: SetPipeline(depth) replaces stop-and-wait with a
// bounded window of depth outstanding request datagrams per socket. The
// machinery below is the window. Each socket of a depth>1 session gets
// a pipe — a demux reader goroutine that matches replies to outstanding
// requests by the 8-byte request id every packet already opens with,
// retransmits each outstanding packet on its own jittered timer, and
// expires it against the session's retransmit policy. The session
// goroutine submits encoded packets and later awaits their handles in
// submission order, so everything above exchange() still sees a simple
// call/return world.
//
// Exactly-once is untouched by any of it: a pipelined session sends THE
// SAME frames with THE SAME (client, seq) pairs as a stop-and-wait
// session, just more of them concurrently — and the shard's per-client
// dedup window (4096 frames deep, against at most depth packets ≈ a
// few hundred frames in flight) already absorbs duplicates and replays
// recorded replies whatever order the window's packets land in.
//
// Retransmit timers live in the reader, not in time.AfterFunc: the
// reader's next Read deadline is the earliest resend time among the
// outstanding packets (capped at readerParkMax so a stray clock never
// wedges it), which costs zero allocations per packet where a timer
// per packet would cost a heap timer each.

// readerParkMax caps one reader Read wait; it bounds how stale the
// reader's view of the resend schedule can get.
const readerParkMax = 50 * time.Millisecond

// handle is one outstanding request packet: the encoded datagram (kept
// for retransmission), the expected reply width, and the completion
// slot the session goroutine awaits. Handles are pooled per pipe and
// their buffers reused, so the steady-state pipelined path allocates
// nothing per packet.
type handle struct {
	reqid    uint64
	buf      []byte  // encoded request packet, owned by the handle
	want     int     // reply values expected (frames sent minus HELLO)
	vals     []int64 // decoded reply values, filled by the reader
	err      error
	done     chan struct{} // cap 1, reused across the handle's lives
	attempt  int           // sends so far (1 = first transmission)
	resendAt time.Time     // next retransmit (or expiry check) time
	deadline time.Time     // retransmit-budget bound; zero = none
}

// pipe is the pipelined state of one session socket. The session
// goroutine owns submit/flush/await and the scratch fields marked so;
// the reader goroutine owns the socket's read side; pend and the
// closed/err pair are the shared boundary, guarded by mu.
type pipe struct {
	s     *Session
	shard int
	conn  net.Conn
	seg   *segSender
	quit  chan struct{} // closes to unpark an idle reader at shutdown
	once  sync.Once     // stop idempotency
	wake  chan struct{} // cap 1: flush kicks the reader out of its park
	// tokens is the window semaphore: one slot per outstanding packet,
	// acquired at submit, released when the packet completes. Submit
	// blocking here (after flushing its queued sends, so the window can
	// drain) is what bounds the pipeline at depth.
	tokens chan struct{}
	wg     sync.WaitGroup

	mu     sync.Mutex
	pend   map[uint64]*handle // outstanding, keyed by request id
	closed bool
	err    error // the terminal socket error once closed

	// Session-goroutine-only scratch.
	unsentH []*handle
	unsentB [][]byte
	free    []*handle

	// Reader-goroutine-only scratch.
	exp []*handle
}

func newPipe(s *Session, shard int) *pipe {
	p := &pipe{
		s:      s,
		shard:  shard,
		conn:   s.conns[shard],
		seg:    newSegSender(s.conns[shard]),
		quit:   make(chan struct{}),
		wake:   make(chan struct{}, 1),
		tokens: make(chan struct{}, s.depth),
		pend:   make(map[uint64]*handle, s.depth),
	}
	p.wg.Add(1)
	go p.run()
	return p
}

// stop unparks an idle reader; the socket close that follows unblocks a
// reading one. Idempotent so Close can race itself.
func (p *pipe) stop() { p.once.Do(func() { close(p.quit) }) }

func (p *pipe) get() *handle {
	if n := len(p.free); n > 0 {
		h := p.free[n-1]
		p.free = p.free[:n-1]
		return h
	}
	return &handle{done: make(chan struct{}, 1)}
}

func (p *pipe) put(h *handle) { p.free = append(p.free, h) }

// submit encodes one request packet (HELLO + frames) under a window
// token and queues it for the next flush. It never fails — a dead
// socket surfaces through the handle at await — and it never deadlocks
// on a full window: queued sends are flushed before blocking, so the
// window can only be full of packets the reader is able to complete.
func (p *pipe) submit(frames []wire.Frame) *handle {
	s := p.s
	s.reqid++
	h := p.get()
	h.reqid = s.reqid
	h.want = len(frames)
	h.vals = h.vals[:0]
	h.err = nil
	h.attempt = 0
	s.fpkt = append(s.fpkt[:0], wire.Frame{Op: wire.OpHello, Client: s.client})
	s.fpkt = append(s.fpkt, frames...)
	h.buf = wire.AppendPacket(h.buf[:0], h.reqid, s.fpkt)
	select {
	case p.tokens <- struct{}{}:
	default:
		p.flush()
		p.tokens <- struct{}{}
	}
	s.outstanding.Add(1)
	p.unsentH = append(p.unsentH, h)
	p.unsentB = append(p.unsentB, h.buf)
	return h
}

// flush transmits every submitted-but-unsent packet as one burst (one
// sendmmsg on linux), registers the batch with the reader, and stamps
// each packet's first resend time. On a pipe whose reader already died
// the batch completes immediately with the terminal error instead —
// nothing is ever left in a state await can hang on.
func (p *pipe) flush() {
	if len(p.unsentH) == 0 {
		return
	}
	s := p.s
	now := time.Now()
	p.mu.Lock()
	closed, cerr := p.closed, p.err
	if !closed {
		for _, h := range p.unsentH {
			h.attempt = 1
			h.resendAt = now.Add(s.timer.Delay(1))
			if s.policy.Budget > 0 {
				h.deadline = now.Add(s.policy.Budget)
			} else {
				h.deadline = time.Time{}
			}
			p.pend[h.reqid] = h
		}
	}
	p.mu.Unlock()
	if closed {
		for _, h := range p.unsentH {
			h.err = cerr
			p.finish(h)
		}
	} else {
		for _, h := range p.unsentH {
			s.packets.Add(1)
			s.rpcs.Add(int64(h.want))
		}
		// A transient send error is recovered by the retransmit path; a
		// closed socket is surfaced by the reader failing the batch.
		p.seg.send(p.unsentB)
		select {
		case p.wake <- struct{}{}:
		default:
		}
	}
	p.unsentH = p.unsentH[:0]
	p.unsentB = p.unsentB[:0]
}

// await blocks until the handle's packet completed (reply matched,
// retransmit budget drained, or socket died), appends its reply values
// to dst and recycles the handle. Handles must be awaited in submission
// order per pipe and exactly once.
func (p *pipe) await(h *handle, dst []int64) ([]int64, error) {
	<-h.done
	dst = append(dst, h.vals...)
	err := h.err
	p.put(h)
	return dst, err
}

// finish releases a completed handle's window slot and signals the
// awaiting session goroutine. Every handle that acquired a token passes
// through here exactly once, whichever way it completed.
func (p *pipe) finish(h *handle) {
	<-p.tokens
	p.s.outstanding.Add(-1)
	h.done <- struct{}{}
}

// run is the demux reader: wait for whichever comes first of a datagram
// or the earliest retransmit time, match replies to outstanding packets
// by request id, and sweep the resend schedule. Stale and foreign
// datagrams — replies to already-completed requests, duplicate replies
// to retransmitted ones — fail the id lookup and are dropped, exactly
// like the stop-and-wait path drops them.
func (p *pipe) run() {
	defer p.wg.Done()
	rbuf := make([]byte, shardBufSize)
	for {
		p.mu.Lock()
		n := len(p.pend)
		var next time.Time
		for _, h := range p.pend {
			if next.IsZero() || h.resendAt.Before(next) {
				next = h.resendAt
			}
		}
		p.mu.Unlock()
		if n == 0 {
			select {
			case <-p.wake:
				continue
			case <-p.quit:
				p.fail(net.ErrClosed)
				return
			}
		}
		now := time.Now()
		if !next.After(now) {
			p.sweep(now)
			continue
		}
		dl := now.Add(readerParkMax)
		if next.Before(dl) {
			dl = next
		}
		p.conn.SetReadDeadline(dl)
		nb, err := p.conn.Read(rbuf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				p.fail(err)
				return
			}
			continue // deadline (sweep runs next lap) or transient
		}
		p.complete(rbuf[:nb])
	}
}

// complete matches one received datagram against the outstanding set
// and finishes the matched handle with its decoded values.
func (p *pipe) complete(b []byte) {
	if len(b) < wire.PacketOverhead {
		return
	}
	id := binary.BigEndian.Uint64(b[:wire.PacketOverhead])
	p.mu.Lock()
	h, ok := p.pend[id]
	if !ok || len(b) != wire.PacketOverhead+8*h.want {
		p.mu.Unlock()
		return // stale, foreign, or not a complete reply
	}
	delete(p.pend, id)
	p.mu.Unlock()
	for i := 0; i < h.want; i++ {
		off := wire.PacketOverhead + 8*i
		h.vals = append(h.vals, int64(binary.BigEndian.Uint64(b[off:off+8])))
	}
	p.finish(h)
}

// sweep walks the outstanding set at a resend tick: packets past their
// budget (attempts or deadline) expire with an error, the rest are
// retransmitted on their own jittered schedule — the per-packet
// retransmit timer, just multiplexed through the reader's deadline
// instead of a heap timer per packet.
func (p *pipe) sweep(now time.Time) {
	s := p.s
	p.mu.Lock()
	for id, h := range p.pend {
		if h.resendAt.After(now) {
			continue
		}
		if h.attempt >= s.policy.Attempts ||
			(!h.deadline.IsZero() && !now.Before(h.deadline)) {
			delete(p.pend, id)
			p.exp = append(p.exp, h)
			continue
		}
		h.attempt++
		s.retrans.Add(1)
		s.packets.Add(1)
		s.rpcs.Add(int64(h.want))
		p.conn.Write(h.buf)
		h.resendAt = now.Add(s.timer.Delay(h.attempt))
	}
	p.mu.Unlock()
	for _, h := range p.exp {
		h.err = fmt.Errorf("udpnet: shard %d: no response inside the retransmit budget after %d sends",
			p.shard, h.attempt)
		p.finish(h)
	}
	p.exp = p.exp[:0]
}

// fail completes every outstanding packet with the terminal socket
// error and marks the pipe closed, so late flushes complete their
// batches immediately instead of registering with a dead reader.
func (p *pipe) fail(err error) {
	p.mu.Lock()
	p.closed = true
	p.err = err
	for id, h := range p.pend {
		delete(p.pend, id)
		p.exp = append(p.exp, h)
	}
	p.mu.Unlock()
	for _, h := range p.exp {
		h.err = err
		h.vals = h.vals[:0]
		p.finish(h)
	}
	p.exp = p.exp[:0]
}
