package udpnet

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/wire"
)

// fastRetransmit keeps lossy tests quick without weakening the
// guarantee being tested.
func fastRetransmit(c *Cluster, attempts int) {
	c.SetRetransmitPolicy(wire.RetryPolicy{Attempts: attempts, Budget: 60 * time.Second},
		wire.Backoff{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond})
}

// dropFirstSend swallows the first transmission of every datagram: each
// exchange must survive on its retransmit. The most deterministic loss
// pattern there is — 100% first-copy loss.
type dropFirstSend struct {
	net.Conn
	n atomic.Int32
}

func (d *dropFirstSend) Write(b []byte) (int, error) {
	if d.n.Add(1)%2 == 1 {
		return len(b), nil
	}
	return d.Conn.Write(b)
}

// Request loss: every packet's first copy vanishes, every exchange
// retransmits, and the counts stay exact with dense values — the
// baseline reliability claim.
func TestUDPRetransmitExactlyOnce(t *testing.T) {
	topo, err := core.New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	cluster := startCluster(t, topo, 2)
	fastRetransmit(cluster, 8)
	cluster.SetDialWrapper(func(conn net.Conn) net.Conn { return &dropFirstSend{Conn: conn} })
	sess, err := cluster.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	vals, err := sess.IncBatch(0, 10, nil)
	if err != nil {
		t.Fatalf("total first-copy loss defeated the retransmit path: %v", err)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for i, v := range vals {
		if v != int64(i) {
			t.Fatalf("values gapped or duplicated at %d: %v", i, vals)
		}
	}
	if n, err := sess.Read(); err != nil || n != 10 {
		t.Fatalf("Read = (%d, %v), want (10, nil)", n, err)
	}
	if sess.Retransmits() == 0 {
		t.Fatal("no retransmissions recorded under total first-copy loss")
	}
	if sess.Retransmits() < sess.Packets()/2 {
		t.Fatalf("retransmits %d < half of %d packets under 100%% first-copy loss",
			sess.Retransmits(), sess.Packets())
	}
}

// dropFirstResponse swallows the first response of every exchange on
// the read path: the server APPLIES the frames, the client never hears,
// retransmits the identical packet, and the shard must answer the
// duplicate from its dedup windows — replayed, not re-executed. The
// final count proves which happened.
type dropFirstResponse struct {
	net.Conn
	n atomic.Int32
}

func (d *dropFirstResponse) Read(b []byte) (int, error) {
	for {
		n, err := d.Conn.Read(b)
		if err != nil {
			return n, err
		}
		if d.n.Add(1)%2 == 1 {
			continue // swallow the first copy
		}
		return n, nil
	}
}

func TestUDPResponseLossReplaysNotReexecutes(t *testing.T) {
	topo, err := core.New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	cluster := startCluster(t, topo, 1)
	fastRetransmit(cluster, 8)
	cluster.SetDialWrapper(func(conn net.Conn) net.Conn { return &dropFirstResponse{Conn: conn} })
	sess, err := cluster.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	vals, err := sess.IncBatch(0, 10, nil)
	if err != nil {
		t.Fatalf("response loss defeated the retransmit path: %v", err)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for i, v := range vals {
		if v != int64(i) {
			t.Fatalf("values gapped or duplicated at %d: %v", i, vals)
		}
	}
	// Every mutating frame reached the shard TWICE (the original apply
	// and the retransmitted duplicate). If the duplicates re-executed,
	// this read overshoots 10.
	if n, err := sess.Read(); err != nil || n != 10 {
		t.Fatalf("Read = (%d, %v), want (10, nil) — duplicates re-executed", n, err)
	}
}

// The chaos grid: loss, duplication, reordering and delay injected on
// the packet path across every (loss% × S stripes × k) cell, with a
// concurrent workload — and the counts must come out EXACT: Σ shard
// reads equals the sequential total, and the claimed values have zero
// gaps and zero duplicates within every stripe's residue class. The
// cross-transport analogue of tcpnet's TestChaosSessionKillExactCountGrid,
// with the fault model a datagram transport actually faces.
func TestUDPChaosExactCountGrid(t *testing.T) {
	for _, loss := range []float64{0.10, 0.25} {
		for _, S := range []int{1, 2} {
			for _, k := range []int{1, 5} {
				t.Run(fmt.Sprintf("loss=%.0f%%/S=%d/k=%d", loss*100, S, k), func(t *testing.T) {
					topo, err := core.New(4, 8)
					if err != nil {
						t.Fatal(err)
					}
					sc, stop, err := StartShardedCluster(topo, S, 2)
					if err != nil {
						t.Fatal(err)
					}
					defer stop()
					faults := Faults{
						Drop: loss, Dup: 0.2, Reorder: 0.2,
						DelayProb: 0.1, Delay: 2 * time.Millisecond,
						Seed: int64(S*1000 + k),
					}
					for i := 0; i < S; i++ {
						fastRetransmit(sc.Cluster(i), 25)
						sc.Cluster(i).SetDialWrapper(faults.Wrapper())
					}
					ctr := sc.NewCounter(2)
					defer ctr.Close()
					ctr.SetRetryPolicy(10, 60*time.Second)

					const procs, per = 4, 6
					vals := make([][]int64, procs)
					var wg sync.WaitGroup
					for pid := 0; pid < procs; pid++ {
						wg.Add(1)
						go func(pid int) {
							defer wg.Done()
							for i := 0; i < per; i++ {
								var err error
								if k == 1 {
									var v int64
									v, err = ctr.Inc(pid)
									vals[pid] = append(vals[pid], v)
								} else {
									vals[pid], err = ctr.IncBatch(pid+i, k, vals[pid])
								}
								if err != nil {
									t.Errorf("pid %d op %d: %v", pid, i, err)
									return
								}
							}
						}(pid)
					}
					wg.Wait()
					if t.Failed() {
						return
					}
					// Verify the exact count on FRESH fault-free sessions
					// (clearing the dial wrapper does not unwrap the
					// counter's pooled sockets), then the
					// zero-gap/zero-dup property.
					total := int64(procs * per * k)
					var got int64
					for i := 0; i < S; i++ {
						sc.Cluster(i).SetDialWrapper(nil)
						sess, err := sc.Cluster(i).NewSession()
						if err != nil {
							t.Fatal(err)
						}
						v, err := sess.Read()
						sess.Close()
						if err != nil {
							t.Fatal(err)
						}
						got += v
					}
					if got != total {
						t.Fatalf("Σ shard reads = %d, want %d", got, total)
					}
					byStripe := make(map[int64][]int64)
					count := 0
					for _, vs := range vals {
						for _, v := range vs {
							byStripe[v%int64(S)] = append(byStripe[v%int64(S)], v)
							count++
						}
					}
					if int64(count) != total {
						t.Fatalf("collected %d values, want %d", count, total)
					}
					for s, vs := range byStripe {
						sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
						for j, v := range vs {
							if want := int64(j)*int64(S) + s; v != want {
								t.Fatalf("stripe %d gapped or duplicated at %d: got %d, want %d",
									s, j, v, want)
							}
						}
					}
					if ctr.Retransmits() == 0 {
						t.Fatal("chaos run recorded zero retransmissions — faults not exercised")
					}
				})
			}
		}
	}
}

// Close semantics match tcpnet: concurrent callers across Close see
// either their value or ErrClosed, never a raw socket error; later
// calls fail fast; Close is idempotent.
func TestUDPCounterCloseDuringFlights(t *testing.T) {
	topo, err := core.New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	cluster := startCluster(t, topo, 2)
	ctr := cluster.NewCounter()

	const procs = 8
	var started sync.WaitGroup
	var wg sync.WaitGroup
	bad := make([]error, procs)
	started.Add(procs)
	for pid := 0; pid < procs; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			started.Done()
			for {
				_, err := ctr.Inc(pid)
				if err == nil {
					continue
				}
				if !errors.Is(err, ErrClosed) {
					bad[pid] = err
				}
				return
			}
		}(pid)
	}
	started.Wait()
	ctr.Close()
	wg.Wait()
	for pid, err := range bad {
		if err != nil {
			t.Fatalf("pid %d saw a non-sentinel error across Close: %v", pid, err)
		}
	}
	if _, err := ctr.Inc(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Inc after Close = %v, want ErrClosed", err)
	}
	if _, err := ctr.IncBatch(0, 4, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("IncBatch after Close = %v, want ErrClosed", err)
	}
	ctr.Close() // idempotent
}

// A shard that is down for the whole retransmit budget surfaces an
// error; after it returns on the SAME address the counter recovers
// (connected UDP sockets need no redial, but flights must stop failing).
func TestUDPCounterRecoversAfterShardRestart(t *testing.T) {
	topo, err := core.New(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := StartShard("127.0.0.1:0", topo, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	cluster := NewCluster(topo, []string{addr})
	cluster.SetRetransmitPolicy(wire.RetryPolicy{Attempts: 3, Budget: time.Second},
		wire.Backoff{Base: 5 * time.Millisecond, Max: 20 * time.Millisecond})
	ctr := cluster.NewCounter()
	defer ctr.Close()
	ctr.SetRetryPolicy(1, 0) // surface the outage instead of masking it
	if v, err := ctr.Inc(0); err != nil || v != 0 {
		t.Fatalf("first Inc = (%d, %v)", v, err)
	}
	s.Close()
	if _, err := ctr.Inc(0); err == nil {
		t.Fatal("Inc against a dead shard succeeded")
	}
	s2, err := StartShard(addr, topo, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	// Counter state restarts with the shard (it owns the cells), so
	// values begin at 0 again; retry until the socket path drains any
	// stale ICMP state.
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, err := ctr.Inc(0)
		if err == nil {
			if v != 0 {
				t.Fatalf("Inc after restart = %d, want 0", v)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("counter never recovered after shard restart: %v", err)
		}
	}
}
