//go:build linux && (amd64 || arm64) && !countnet_nommsg

package udpnet

import (
	"net"
	"net/netip"
	"syscall"
	"unsafe"
)

// Batched-syscall shardIO: recvmmsg/sendmmsg move whole bursts of
// datagrams per kernel crossing, which is where a busy UDP shard's
// cycles actually go — the per-packet work (decode, fetch-add, encode)
// is tens of nanoseconds while a syscall is microseconds. The syscall
// numbers are ABI-stable per arch and pinned in mmsg_sysnum_*.go, so
// no new dependency is needed; the raw structures below
// mirror <linux/socket.h>'s struct mmsghdr for the two 64-bit arches
// this file builds on (the tag keeps 32-bit layouts out). Blocking is
// delegated to the runtime netpoller through RawConn.Read/Write: the
// callback returns false on EAGAIN and the goroutine parks instead of
// spinning. Build with -tags countnet_nommsg to force the portable
// fallback on linux (both variants are vetted by `make check`).

// mmsghdr mirrors struct mmsghdr: a msghdr plus the kernel-reported
// byte count for that slot. 56-byte Msghdr + uint32 + explicit pad
// keeps the 64-byte stride the kernel walks.
type mmsghdr struct {
	hdr syscall.Msghdr
	len uint32
	_   [4]byte
}

type mmsgIO struct {
	conn  *net.UDPConn
	rc    syscall.RawConn
	batch int

	// Receive-side scratch, one slot per burst position. rbufs keeps
	// ownership of pooled buffers between calls: a slot's buffer is
	// handed to the pipeline only when a datagram actually landed in it.
	rhdrs  []mmsghdr
	riovs  []syscall.Iovec
	rnames []syscall.RawSockaddrInet6
	rbufs  []*[shardBufSize]byte

	// Send-side scratch.
	whdrs  []mmsghdr
	wiovs  []syscall.Iovec
	wnames []syscall.RawSockaddrInet6

	// The RawConn callbacks are bound ONCE here and communicate through
	// the fields below — a closure literal at the call site would
	// escape and cost a heap allocation per syscall, which is exactly
	// the per-packet overhead this file exists to amortize away. Safe
	// because one goroutine owns each direction (the shard's reader and
	// sender respectively).
	readFn  func(fd uintptr) bool
	writeFn func(fd uintptr) bool
	rn      int // burst size for readFn
	rgot    int
	rerrno  syscall.Errno
	wn      int // burst size for writeFn
	wsent   int
	werrno  syscall.Errno
}

// newShardIO returns the recvmmsg/sendmmsg implementation, falling
// back to the portable loop if the raw descriptor is unavailable.
func newShardIO(conn *net.UDPConn, batch int) shardIO {
	rc, err := conn.SyscallConn()
	if err != nil {
		return &loopIO{conn: conn}
	}
	io := &mmsgIO{
		conn:   conn,
		rc:     rc,
		batch:  batch,
		rhdrs:  make([]mmsghdr, batch),
		riovs:  make([]syscall.Iovec, batch),
		rnames: make([]syscall.RawSockaddrInet6, batch),
		rbufs:  make([]*[shardBufSize]byte, batch),
		whdrs:  make([]mmsghdr, batch),
		wiovs:  make([]syscall.Iovec, batch),
		wnames: make([]syscall.RawSockaddrInet6, batch),
	}
	io.readFn = func(fd uintptr) bool {
		r, _, e := syscall.Syscall6(sysRECVMMSG, fd,
			uintptr(unsafe.Pointer(&io.rhdrs[0])), uintptr(io.rn),
			uintptr(syscall.MSG_DONTWAIT), 0, 0)
		if e == syscall.EAGAIN {
			return false // park on the netpoller until readable
		}
		io.rgot, io.rerrno = int(r), e
		return true
	}
	io.writeFn = func(fd uintptr) bool {
		r, _, e := syscall.Syscall6(sysSENDMMSG, fd,
			uintptr(unsafe.Pointer(&io.whdrs[0])), uintptr(io.wn),
			uintptr(syscall.MSG_DONTWAIT), 0, 0)
		if e == syscall.EAGAIN {
			return false // park until writable
		}
		if e != 0 {
			io.wsent, io.werrno = 0, e
			return true
		}
		io.wsent, io.werrno = int(r), 0
		return true
	}
	return io
}

func (io *mmsgIO) readBatch(dst []pkt, pool *bufPool) (int, error) {
	n := min(len(dst), io.batch)
	for i := 0; i < n; i++ {
		if io.rbufs[i] == nil {
			io.rbufs[i] = pool.get()
		}
		io.riovs[i] = syscall.Iovec{Base: &io.rbufs[i][0], Len: shardBufSize}
		io.rhdrs[i] = mmsghdr{hdr: syscall.Msghdr{
			Name:    (*byte)(unsafe.Pointer(&io.rnames[i])),
			Namelen: syscall.SizeofSockaddrInet6,
			Iov:     &io.riovs[i],
			Iovlen:  1,
		}}
	}
	io.rn = n
	err := io.rc.Read(io.readFn)
	if err != nil {
		return 0, err
	}
	if io.rerrno != 0 {
		return 0, io.rerrno
	}
	got := io.rgot
	for i := 0; i < got; i++ {
		ln := int(io.rhdrs[i].len)
		if io.rhdrs[i].hdr.Flags&syscall.MSG_TRUNC != 0 {
			ln = -1 // poisoned: the dispatcher drops truncated packets
		}
		dst[i] = pkt{buf: io.rbufs[i], n: ln, ap: sockaddrToAddrPort(&io.rnames[i])}
		io.rbufs[i] = nil
	}
	return got, nil
}

func (io *mmsgIO) writeBatch(ps []pkt) error {
	for off := 0; off < len(ps); {
		n := min(len(ps)-off, io.batch)
		for i := 0; i < n; i++ {
			p := &ps[off+i]
			io.wiovs[i] = syscall.Iovec{Base: &p.buf[0], Len: uint64(p.n)}
			nl := addrPortToSockaddr(&io.wnames[i], p.ap)
			io.whdrs[i] = mmsghdr{hdr: syscall.Msghdr{
				Name:    (*byte)(unsafe.Pointer(&io.wnames[i])),
				Namelen: nl,
				Iov:     &io.wiovs[i],
				Iovlen:  1,
			}}
		}
		io.wn = n
		err := io.rc.Write(io.writeFn)
		if err != nil {
			return err
		}
		if io.werrno != 0 {
			return io.werrno
		}
		if io.wsent <= 0 {
			return syscall.EIO
		}
		off += io.wsent // a short sendmmsg resumes with the remainder
	}
	return nil
}

// segSender writes bursts of request datagrams on a connected client
// socket via sendmmsg — the session pipeline's flush primitive. The
// socket stays connected (no per-packet Name), so a burst of depth-many
// chunks costs one kernel crossing. Fault-injecting wrappers are not
// *net.UDPConn, so chaos tests transparently take the Write loop and
// every fault still applies per datagram.
type segSender struct {
	conn net.Conn
	rc   syscall.RawConn
	hdrs []mmsghdr
	iovs []syscall.Iovec

	// writeFn is bound once (see mmsgIO): a per-call closure would cost
	// an allocation per flush on the zero-alloc session path. The pipe's
	// session goroutine is the only caller.
	writeFn func(fd uintptr) bool
	wn      int
	wsent   int
	werrno  syscall.Errno
}

func newSegSender(conn net.Conn) *segSender {
	ss := &segSender{conn: conn}
	if uc, ok := conn.(*net.UDPConn); ok {
		if rc, err := uc.SyscallConn(); err == nil {
			ss.rc = rc
		}
	}
	ss.writeFn = func(fd uintptr) bool {
		r, _, e := syscall.Syscall6(sysSENDMMSG, fd,
			uintptr(unsafe.Pointer(&ss.hdrs[0])), uintptr(ss.wn),
			uintptr(syscall.MSG_DONTWAIT), 0, 0)
		if e == syscall.EAGAIN {
			return false
		}
		if e != 0 {
			ss.wsent, ss.werrno = 0, e
			return true
		}
		ss.wsent, ss.werrno = int(r), 0
		return true
	}
	return ss
}

func (ss *segSender) send(bufs [][]byte) error {
	if ss.rc == nil {
		for _, b := range bufs {
			if _, err := ss.conn.Write(b); err != nil {
				return err
			}
		}
		return nil
	}
	if len(bufs) > len(ss.hdrs) {
		ss.hdrs = make([]mmsghdr, len(bufs))
		ss.iovs = make([]syscall.Iovec, len(bufs))
	}
	for off := 0; off < len(bufs); {
		n := len(bufs) - off
		for i := 0; i < n; i++ {
			b := bufs[off+i]
			ss.iovs[i] = syscall.Iovec{Base: &b[0], Len: uint64(len(b))}
			ss.hdrs[i] = mmsghdr{hdr: syscall.Msghdr{Iov: &ss.iovs[i], Iovlen: 1}}
		}
		ss.wn = n
		err := ss.rc.Write(ss.writeFn)
		if err != nil {
			return err
		}
		if ss.werrno != 0 {
			return ss.werrno
		}
		if ss.wsent <= 0 {
			return syscall.EIO
		}
		off += ss.wsent
	}
	return nil
}

// sockaddrToAddrPort converts a kernel-filled raw sockaddr to the
// allocation-free netip.AddrPort the pipeline carries. Ports ride the
// wire big-endian inside the raw structs.
func sockaddrToAddrPort(rsa *syscall.RawSockaddrInet6) netip.AddrPort {
	switch rsa.Family {
	case syscall.AF_INET:
		rsa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(rsa))
		return netip.AddrPortFrom(netip.AddrFrom4(rsa4.Addr), be16(rsa4.Port))
	case syscall.AF_INET6:
		return netip.AddrPortFrom(netip.AddrFrom16(rsa.Addr), be16(rsa.Port))
	}
	return netip.AddrPort{}
}

// addrPortToSockaddr fills a raw sockaddr for sendmmsg and returns the
// length the kernel expects for that family.
func addrPortToSockaddr(rsa *syscall.RawSockaddrInet6, ap netip.AddrPort) uint32 {
	a := ap.Addr()
	if a.Is4() {
		rsa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(rsa))
		*rsa4 = syscall.RawSockaddrInet4{Family: syscall.AF_INET, Port: be16(ap.Port()), Addr: a.As4()}
		return syscall.SizeofSockaddrInet4
	}
	*rsa = syscall.RawSockaddrInet6{Family: syscall.AF_INET6, Port: be16(ap.Port()), Addr: a.As16()}
	return syscall.SizeofSockaddrInet6
}

// be16 byte-swaps a 16-bit value between host order (little-endian on
// both tagged arches) and the network order raw sockaddrs use. It is
// its own inverse, so one helper serves both directions.
func be16(v uint16) uint16 { return v<<8 | v>>8 }
