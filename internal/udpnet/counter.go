package udpnet

import (
	"time"

	"repro/internal/ctlplane"
	"repro/internal/wire"
	"repro/internal/xport"
)

// ErrClosed is returned by Counter operations — including callers pooled
// in a coalescing window — once Close has been called. It is the shared
// xport sentinel, so errors.Is matches across transports.
var ErrClosed = xport.ErrClosed

// Default flight-retry budget: a flight whose exchanges exhausted their
// retransmit budget (a shard unreachable for seconds, not a lost
// packet) is re-run on fresh sessions up to DefaultRetryAttempts total
// tries within DefaultRetryBudget of the first failure, paced by
// DefaultRetryBackoff. The retry re-draws the identical sequence
// numbers from the flight's tape, so whatever the dead attempts already
// applied is replayed, not re-executed. Attempts and backoff are the
// shared xport defaults; the budget is the UDP-specific value the
// Cluster link advertises — wide, because a flight only fails after a
// whole retransmit budget drained.
const (
	DefaultRetryAttempts = xport.DefaultRetryAttempts
	DefaultRetryBudget   = 8 * time.Second
)

// DefaultRetryBackoff paces the pause between flight retries (jittered
// exponential — the shared xport schedule).
var DefaultRetryBackoff = xport.DefaultRetryBackoff

// Counter is the cluster-wide coalescing Fetch&Increment client: the
// shared transport-agnostic core (see xport.Counter) running over this
// package's datagram link. Packet loss inside the retransmit budget
// never reaches the flight layer; values stay dense through any
// absorbed loss, duplication or reordering.
type Counter = xport.Counter

// CounterStatus is a pooled counter client's /status document.
type CounterStatus = xport.CounterStatus

// --- xport.Link adapter -------------------------------------------------

// Transport implements xport.Link: the metrics label and /status
// discriminator.
func (c *Cluster) Transport() string { return "udp" }

// Addrs implements xport.Link with a copy of the shard addresses.
func (c *Cluster) Addrs() []string { return append([]string(nil), c.addrs...) }

// InWidth implements xport.Link with the topology's input width.
func (c *Cluster) InWidth() int { return c.net.InWidth() }

// OutWidth implements xport.Link with the topology's output width.
func (c *Cluster) OutWidth() int { return c.net.OutWidth() }

// Dial implements xport.Link: a session announcing the given client id
// in every packet it sends.
func (c *Cluster) Dial(client uint64) (xport.Session, error) {
	return c.newSession(client)
}

// RetryBudget implements xport.Link: a UDP flight failure already
// consumed a whole per-exchange retransmit budget, so the flight-level
// window is wide.
func (c *Cluster) RetryBudget() time.Duration { return DefaultRetryBudget }

// NewCounter builds the coalescing counter client for the cluster with
// the default pool width (one session slot per input wire).
func (c *Cluster) NewCounter() *Counter { return c.NewCounterPool(0) }

// NewCounterPool builds the coalescing counter client over a session
// pool retaining at most width idle sessions (width <= 0 defaults to
// the input width). Flights check sessions out round-robin; bursts
// beyond the width open extra sockets that are retired on return. The
// counter owns a fresh client id that every pooled session announces in
// every packet, keying its exactly-once dedup windows on the shards.
//
// On top of the shared client metrics the xport core registers, the
// datagram extras only UDP pays are registered here: packets and
// retransmits (the E28 retransmit-rate pair), the configured pipeline
// depth, and the outstanding-packets gauge.
func (c *Cluster) NewCounterPool(width int) *Counter {
	ctr := xport.NewCounter(c, width)
	labels := []ctlplane.Label{{Key: "transport", Value: "udp"}}
	reg := ctr.Registry()
	reg.Counter(wire.MetricClientPackets, wire.HelpClientPackets, ctr.Packets, labels...)
	reg.Counter(wire.MetricClientRetransmits, wire.HelpClientRetransmits, ctr.Retransmits, labels...)
	reg.Gauge(wire.MetricClientPipelineDepth, wire.HelpClientPipelineDepth, func() int64 {
		return int64(c.Pipeline())
	}, labels...)
	reg.Gauge(wire.MetricClientOutstanding, wire.HelpClientOutstanding, ctr.Outstanding, labels...)
	return ctr
}
