package udpnet

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ctlplane"
	"repro/internal/wire"
)

// ErrClosed is returned by Counter operations — including callers pooled
// in a coalescing window — once Close has been called. Callers never see
// a raw socket error caused by their own Counter shutting down.
var ErrClosed = errors.New("udpnet: counter closed")

// Default flight-retry budget: a flight whose exchanges exhausted their
// retransmit budget (a shard unreachable for seconds, not a lost
// packet) is re-run on fresh sessions up to DefaultRetryAttempts total
// tries within DefaultRetryBudget of the first failure, paced by
// DefaultRetryBackoff. The retry re-draws the identical sequence
// numbers from the flight's tape, so whatever the dead attempts already
// applied is replayed, not re-executed.
const (
	DefaultRetryAttempts = 4
	DefaultRetryBudget   = 8 * time.Second
)

// DefaultRetryBackoff paces the pause between flight retries (jittered
// exponential, shared machinery with tcpnet's redial backoff).
var DefaultRetryBackoff = wire.Backoff{Base: 2 * time.Millisecond, Max: 250 * time.Millisecond}

// Counter is a cluster-wide coalescing Fetch&Increment client with the
// same shape as tcpnet.Counter: concurrent Inc callers entering on the
// same input wire merge into one in-flight batched pipeline (a
// single-flight window per wire), flights run on sessions checked out
// of a shared socket pool, and a flight that fails outright — its
// exchanges out of retransmit budget — is retried on a fresh session
// re-sending identical (client, seq) pairs from its sequence tape.
// Packet loss inside the retransmit budget never reaches this layer;
// values stay dense through any absorbed loss, duplication or
// reordering.
type Counter struct {
	c     *Cluster
	id    uint64        // client id every pooled session announces
	seqs  atomic.Uint64 // mutating-frame sequence source, shared by flights
	combs []udpComb
	pool  *pool

	mu          sync.Mutex
	closed      bool
	maxAttempts int
	budget      time.Duration
	backoff     wire.Backoff
	inflight    sync.WaitGroup // flights holding pool sessions

	// Control-plane state, mirroring tcpnet.Counter: a lifecycle word
	// for /health (0 live, 1 draining, 2 closed), bare atomics the
	// flight and landing paths bump, and the registry /metrics reads.
	state        atomic.Int32
	flights      atomic.Int64
	retries      atomic.Int64
	inflightN    atomic.Int64
	windows      atomic.Int64
	windowTokens atomic.Int64
	reg          *ctlplane.Registry
}

// Counter lifecycle states (Counter.state).
const (
	stateLive     = 0
	stateDraining = 1
	stateClosed   = 2
)

// udpComb is the per-input-wire coalescing state.
type udpComb struct {
	mu     sync.Mutex
	flying bool
	next   *cwindow
	_      [4]int64
}

// cwindow is one pooled group of coalesced Inc calls.
type cwindow struct {
	k    int64
	vals []int64
	err  error
	done chan struct{}
}

// NewCounter builds the coalescing counter client for the cluster with
// the default pool width (one session slot per input wire).
func (c *Cluster) NewCounter() *Counter { return c.NewCounterPool(0) }

// NewCounterPool builds the coalescing counter client over a session
// pool retaining at most width idle sessions (width <= 0 defaults to
// the input width). Flights check sessions out round-robin; bursts
// beyond the width open extra sockets that are retired on return. The
// counter owns a fresh client id that every pooled session announces in
// every packet, keying its exactly-once dedup windows on the shards.
func (c *Cluster) NewCounterPool(width int) *Counter {
	id := wire.NextClientID()
	t := &Counter{
		c:           c,
		id:          id,
		combs:       make([]udpComb, c.net.InWidth()),
		pool:        newPool(c, width, id),
		maxAttempts: DefaultRetryAttempts,
		budget:      DefaultRetryBudget,
		backoff:     DefaultRetryBackoff,
		reg:         ctlplane.NewRegistry(),
	}
	t.registerMetrics()
	return t
}

// registerMetrics wires the counter's read-side views into its
// registry: the shared client metrics every transport serves, plus the
// datagram pair (packets, retransmits) only UDP pays.
func (t *Counter) registerMetrics() {
	labels := []ctlplane.Label{{Key: "transport", Value: "udp"}}
	t.reg.Counter(wire.MetricClientRPCs, wire.HelpClientRPCs, t.RPCs, labels...)
	t.reg.Counter(wire.MetricClientPackets, wire.HelpClientPackets, t.Packets, labels...)
	t.reg.Counter(wire.MetricClientRetransmits, wire.HelpClientRetransmits, t.Retransmits, labels...)
	t.reg.Gauge(wire.MetricClientPipelineDepth, wire.HelpClientPipelineDepth, func() int64 {
		return int64(t.c.Pipeline())
	}, labels...)
	t.reg.Gauge(wire.MetricClientOutstanding, wire.HelpClientOutstanding, t.pool.outstandingCount, labels...)
	t.reg.Counter(wire.MetricClientFlights, wire.HelpClientFlights, t.flights.Load, labels...)
	t.reg.Counter(wire.MetricClientRetries, wire.HelpClientRetries, t.retries.Load, labels...)
	t.reg.Gauge(wire.MetricClientInflight, wire.HelpClientInflight, t.inflightN.Load, labels...)
	t.reg.Counter(wire.MetricClientWindows, wire.HelpClientWindows, t.windows.Load, labels...)
	t.reg.Counter(wire.MetricClientWindowTokens, wire.HelpClientWindowTokens, t.windowTokens.Load, labels...)
	t.reg.Counter(wire.MetricClientPoolCheckouts, wire.HelpClientPoolCheckouts, t.pool.checkouts.Load, labels...)
	t.reg.Counter(wire.MetricClientPoolDials, wire.HelpClientPoolDials, t.pool.dials.Load, labels...)
	t.reg.Counter(wire.MetricClientPoolEvictions, wire.HelpClientPoolEvictions, t.pool.evictions.Load, labels...)
	t.reg.Gauge(wire.MetricClientPoolIdle, wire.HelpClientPoolIdle, func() int64 {
		t.pool.mu.Lock()
		defer t.pool.mu.Unlock()
		return int64(len(t.pool.idle))
	}, labels...)
}

// CounterStatus is a pooled counter client's /status document.
type CounterStatus struct {
	Transport  string   `json:"transport"`
	State      string   `json:"state"` // live, draining, closed
	ClientID   uint64   `json:"client_id"`
	PoolWidth  int      `json:"pool_width"`
	InWidth    int      `json:"in_width"`
	OutWidth   int      `json:"out_width"`
	ShardAddrs []string `json:"shard_addrs"`
}

func stateName(s int32) string {
	switch s {
	case stateDraining:
		return "draining"
	case stateClosed:
		return "closed"
	}
	return "live"
}

// Health implements ctlplane.Source: live until Close starts draining,
// quiescent when no flight holds a pool session — the precondition for
// an exact-count Read.
func (t *Counter) Health() ctlplane.Health {
	st := t.state.Load()
	return ctlplane.Health{
		Live:      st == stateLive,
		Quiescent: t.inflightN.Load() == 0,
		Detail:    stateName(st),
	}
}

// Status implements ctlplane.Source with the counter's client-side
// topology.
func (t *Counter) Status() any {
	return CounterStatus{
		Transport:  "udp",
		State:      stateName(t.state.Load()),
		ClientID:   t.id,
		PoolWidth:  t.pool.width,
		InWidth:    t.c.net.InWidth(),
		OutWidth:   t.c.net.OutWidth(),
		ShardAddrs: append([]string(nil), t.c.addrs...),
	}
}

// Gather implements ctlplane.Source, evaluating the counter's
// registered metric views.
func (t *Counter) Gather() []ctlplane.Sample { return t.reg.Gather() }

// SetRetryPolicy bounds the flight-level self-healing path: a failed
// flight is re-run on fresh sessions for at most attempts total tries
// (including the first), within budget of the first failure (budget
// <= 0 removes the time bound). attempts < 1 is clamped to 1. Applies
// to flights started after the call. Note the per-exchange retransmit
// budget is separate — see Cluster.SetRetransmitPolicy.
func (t *Counter) SetRetryPolicy(attempts int, budget time.Duration) {
	if attempts < 1 {
		attempts = 1
	}
	t.mu.Lock()
	t.maxAttempts = attempts
	t.budget = budget
	t.mu.Unlock()
}

// SetRetryBackoff replaces the jittered pacing between flight retries.
func (t *Counter) SetRetryBackoff(b wire.Backoff) {
	t.mu.Lock()
	t.backoff = b
	t.mu.Unlock()
}

// Inc returns the next counter value. A lone caller pays the
// single-token exchanges; concurrent callers on the same wire coalesce.
func (t *Counter) Inc(pid int) (int64, error) {
	in := pid % t.c.net.InWidth()
	cb := &t.combs[in]
	cb.mu.Lock()
	if cb.flying {
		w := cb.next
		if w == nil {
			w = &cwindow{done: make(chan struct{})}
			cb.next = w
		}
		idx := w.k
		w.k++
		cb.mu.Unlock()
		<-w.done
		if w.err != nil {
			return 0, w.err
		}
		return w.vals[idx], nil
	}
	cb.flying = true
	cb.mu.Unlock()
	var v int64
	err := t.flight(func(sess *Session) error {
		var ferr error
		v, ferr = sess.Inc(pid)
		return ferr
	})
	t.land(cb, in)
	if err != nil {
		return 0, err
	}
	return v, nil
}

// Dec revokes the counter's most recent increment on the antitoken's
// exit wire (a one-element batched pipeline on a pooled session).
func (t *Counter) Dec(pid int) (int64, error) {
	vals, err := t.DecBatch(pid, 1, nil)
	if err != nil {
		return 0, err
	}
	return vals[0], nil
}

// IncBatch claims k values as one batched pipeline on a pooled session.
func (t *Counter) IncBatch(pid, k int, dst []int64) ([]int64, error) {
	return t.batch(pid, k, false, dst)
}

// DecBatch revokes k values as one batched antitoken pipeline on a
// pooled session.
func (t *Counter) DecBatch(pid, k int, dst []int64) ([]int64, error) {
	return t.batch(pid, k, true, dst)
}

func (t *Counter) batch(pid, k int, anti bool, dst []int64) ([]int64, error) {
	if k <= 0 {
		return dst, nil
	}
	in := pid % t.c.net.InWidth()
	base := len(dst)
	err := t.flight(func(sess *Session) error {
		var ferr error
		dst, ferr = sess.batch(in, int64(k), anti, dst[:base])
		return ferr
	})
	if err != nil {
		return dst[:base], err
	}
	return dst, nil
}

// Read returns the cluster's quiescent net count by summing the exit
// cells over a pooled session — the exact-count read side.
func (t *Counter) Read() (int64, error) {
	var total int64
	err := t.flight(func(sess *Session) error {
		var ferr error
		total, ferr = sess.Read()
		return ferr
	})
	return total, err
}

// flight runs one pooled operation: check a session out, run op, and if
// the whole retransmit budget of some exchange drained (shard gone, not
// packet lost), retire the session and re-run the flight on a fresh one
// under the counter's attempt/deadline budget, paced by jittered
// backoff. Sequence numbers are drawn through a tape so every re-run
// re-sends the same (client, seq) pairs and the shards' dedup windows
// keep it exactly-once. Close fails new flights with ErrClosed, waits
// for running ones, and a flight mid-retry observes it between
// attempts.
func (t *Counter) flight(op func(*Session) error) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	attempts, budget, backoff := t.maxAttempts, t.budget, t.backoff
	t.inflight.Add(1)
	t.mu.Unlock()
	t.flights.Add(1)
	t.inflightN.Add(1)
	defer t.inflightN.Add(-1)
	defer t.inflight.Done()

	tape := wire.NewSeqTape(&t.seqs)
	var deadline time.Time
	for attempt := 1; ; attempt++ {
		if attempt > 1 {
			t.retries.Add(1)
		}
		err := t.attempt(op, tape)
		if err == nil || errors.Is(err, ErrClosed) {
			return err
		}
		t.mu.Lock()
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return ErrClosed
		}
		if attempt >= attempts {
			return err
		}
		if budget > 0 {
			if deadline.IsZero() {
				deadline = time.Now().Add(budget)
			} else if time.Now().After(deadline) {
				return err
			}
		}
		time.Sleep(backoff.Delay(attempt))
	}
}

func (t *Counter) attempt(op func(*Session) error, tape *wire.SeqTape) error {
	sess, err := t.pool.checkout()
	if err != nil {
		return err
	}
	tape.Rewind()
	sess.tape = tape
	err = op(sess)
	sess.tape = nil
	if err != nil {
		t.pool.evict(sess)
		return err
	}
	t.pool.checkin(sess)
	return nil
}

// land drains the windows that pooled up behind the owner's flight, one
// batched pipeline per window, then releases the wire. Windows stranded
// by Close fail with ErrClosed rather than a raw socket error.
func (t *Counter) land(cb *udpComb, in int) {
	for {
		cb.mu.Lock()
		w := cb.next
		cb.next = nil
		if w == nil {
			cb.flying = false
			cb.mu.Unlock()
			return
		}
		cb.mu.Unlock()
		t.windows.Add(1)
		t.windowTokens.Add(w.k)
		w.err = t.flight(func(sess *Session) error {
			var ferr error
			w.vals, ferr = sess.batch(in, w.k, false, w.vals[:0])
			return ferr
		})
		close(w.done)
	}
}

// RPCs returns the total request frames sent across the counter's
// sessions (retransmits included), retired sessions folded in — the
// monotone E28 cost numerator, in the same unit as tcpnet.Counter.RPCs.
func (t *Counter) RPCs() int64 { return t.pool.rpcs() }

// Packets returns the total request datagrams sent (monotone,
// eviction-proof); Retransmits how many were retransmissions — the pair
// behind E28's retransmit-rate column.
func (t *Counter) Packets() int64 { return t.pool.packetCount() }

// Retransmits returns the monotone retransmitted-datagram total.
func (t *Counter) Retransmits() int64 { return t.pool.retransCount() }

// Close shuts the counter down: new flights (and windows stranded
// behind a closing flight) fail with ErrClosed, running flights are
// waited for, and every pooled session is then retired with its
// counters folded into the monotone totals. Idempotent.
func (t *Counter) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	t.state.Store(stateDraining)
	t.mu.Unlock()
	t.inflight.Wait()
	t.pool.close()
	t.state.Store(stateClosed)
}

// pool is the Counter's session pool: up to width idle sessions reused
// round-robin across flights, every session announcing the counter's
// client id, every session tracked in live so the cost bills stay
// monotone through eviction and retirement. Unlike tcpnet's pool there
// is no checkout health probe: a UDP socket has no peer state to go
// stale — failure lives entirely in the exchange retransmit path.
type pool struct {
	c           *Cluster
	width       int
	id          uint64 // the owning Counter's client id
	mu          sync.Mutex
	idle        []*Session
	live        map[*Session]struct{}
	lostRPCs    int64 // counters of retired sessions
	lostPackets int64
	lostRetrans int64
	closed      bool

	// Control-plane counters: checkouts by flights, fresh dials, and
	// evictions (mid-flight failures only — not width-cap or close
	// retirements). No probe-failure arm here: UDP checkout has no
	// health probe.
	checkouts atomic.Int64
	dials     atomic.Int64
	evictions atomic.Int64
}

func newPool(c *Cluster, width int, id uint64) *pool {
	if width < 1 {
		width = c.net.InWidth()
	}
	return &pool{c: c, width: width, id: id, live: make(map[*Session]struct{})}
}

// checkout hands the caller exclusive use of a session: the least
// recently returned idle one (round-robin), or a fresh one when none is
// idle.
func (p *pool) checkout() (*Session, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	if len(p.idle) > 0 {
		sess := p.idle[0]
		n := len(p.idle)
		copy(p.idle, p.idle[1:])
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		p.checkouts.Add(1)
		return sess, nil
	}
	p.mu.Unlock()
	sess, err := p.c.newSession(p.id)
	if err != nil {
		return nil, err
	}
	p.dials.Add(1)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		sess.Close()
		return nil, ErrClosed
	}
	p.live[sess] = struct{}{}
	p.mu.Unlock()
	p.checkouts.Add(1)
	return sess, nil
}

// checkin returns a session to the idle list; beyond the pool width (or
// after close) it is retired instead.
func (p *pool) checkin(sess *Session) {
	p.mu.Lock()
	if !p.closed && len(p.idle) < p.width {
		p.idle = append(p.idle, sess)
		p.mu.Unlock()
		return
	}
	p.retireLocked(sess)
	p.mu.Unlock()
}

// evict retires a session whose flight failed outright: its sockets may
// have surfaced ICMP state worth discarding, and a fresh session is
// cheap.
func (p *pool) evict(sess *Session) {
	p.evictions.Add(1)
	p.mu.Lock()
	p.retireLocked(sess)
	p.mu.Unlock()
}

func (p *pool) retireLocked(sess *Session) {
	if _, ok := p.live[sess]; !ok {
		return
	}
	delete(p.live, sess)
	p.lostRPCs += sess.RPCs()
	p.lostPackets += sess.Packets()
	p.lostRetrans += sess.Retransmits()
	sess.Close()
}

func (p *pool) rpcs() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := p.lostRPCs
	for sess := range p.live {
		total += sess.RPCs()
	}
	return total
}

func (p *pool) packetCount() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := p.lostPackets
	for sess := range p.live {
		total += sess.Packets()
	}
	return total
}

// outstandingCount sums the request datagrams currently in flight
// across the live sessions — a gauge, so unlike the monotone totals
// above there is nothing to fold in for retired sessions (a retiring
// session's pipes complete every outstanding packet on close).
func (p *pool) outstandingCount() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var total int64
	for sess := range p.live {
		total += sess.outstanding.Load()
	}
	return total
}

func (p *pool) retransCount() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := p.lostRetrans
	for sess := range p.live {
		total += sess.Retransmits()
	}
	return total
}

// close retires every idle session and marks the pool closed; sessions
// still checked out are retired by their flight's checkin.
func (p *pool) close() {
	p.mu.Lock()
	p.closed = true
	for _, sess := range p.idle {
		p.retireLocked(sess)
	}
	p.idle = nil
	p.mu.Unlock()
}
