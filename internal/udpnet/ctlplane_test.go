package udpnet

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ctlplane"
)

func scrapeURL(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestUDPShardControlPlaneEndpoints checks a datagram shard's admin
// surface: /status topology, packet/frame counters moving under load,
// the dedup window visible in /metrics, and the 503 after Close.
func TestUDPShardControlPlaneEndpoints(t *testing.T) {
	topo, err := core.New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	var shards []*Shard
	addrs := make([]string, 2)
	for i := range addrs {
		s, err := StartShard("127.0.0.1:0", topo, i, len(addrs))
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		shards = append(shards, s)
		addrs[i] = s.Addr()
	}
	srv, err := ctlplane.Serve("127.0.0.1:0", shards[0])
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := scrapeURL(t, base+"/health")
	if code != http.StatusOK {
		t.Fatalf("/health on idle shard = %d: %s", code, body)
	}
	var h ctlplane.Health
	if err := json.Unmarshal([]byte(body), &h); err != nil || !h.Live || !h.Quiescent {
		t.Fatalf("idle shard health %q (err %v)", body, err)
	}

	ctr := NewCluster(topo, addrs).NewCounter()
	defer ctr.Close()
	for pid := 0; pid < 8; pid++ {
		if _, err := ctr.Inc(pid); err != nil {
			t.Fatal(err)
		}
	}

	code, body = scrapeURL(t, base+"/status")
	if code != http.StatusOK {
		t.Fatalf("/status = %d", code)
	}
	var st ShardStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/status body %q: %v", body, err)
	}
	if st.Transport != "udp" || st.Shard != 0 || st.Shards != 2 {
		t.Fatalf("/status = %+v", st)
	}
	if st.Balancers == 0 || st.Cells == 0 {
		t.Fatalf("/status reports an empty partition: %+v", st)
	}

	_, body = scrapeURL(t, base+"/metrics")
	m := make(map[string]float64)
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		cut := strings.LastIndexByte(line, ' ')
		if cut < 0 {
			t.Fatalf("malformed metric line %q", line)
		}
		v, err := strconv.ParseFloat(line[cut+1:], 64)
		if err != nil {
			t.Fatalf("metric line %q: %v", line, err)
		}
		m[line[:cut]] = v
	}
	lbl := `{transport="udp",shard="0"}`
	if m["countnet_shard_packets_total"+lbl] == 0 {
		t.Fatalf("no packets counted after 8 incs:\n%s", body)
	}
	if m["countnet_shard_frames_total"+lbl] == 0 {
		t.Fatalf("no frames counted after 8 incs:\n%s", body)
	}
	if m["countnet_dedup_clients"+lbl] == 0 {
		t.Fatalf("counter's dedup window not visible:\n%s", body)
	}

	shards[0].Close()
	shards[0].Close() // idempotent
	code, body = scrapeURL(t, base+"/health")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/health on closed shard = %d: %s", code, body)
	}
}

// sampleKey canonicalizes one gathered sample to a series identity.
func sampleKey(s ctlplane.Sample) string {
	var b strings.Builder
	b.WriteString(s.Name)
	for _, l := range s.Labels {
		b.WriteByte('|')
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// TestMetricsMonotoneUnderChaos runs the lossy-duplicating-reordering
// fault injector under a concurrent workload while a scraper goroutine
// hammers the fleet's Gather the whole time (the -race payoff), and
// asserts every counter-typed series is monotone non-decreasing scrape
// over scrape — retransmit storms may inflate totals but can never make
// a bill run backwards.
func TestMetricsMonotoneUnderChaos(t *testing.T) {
	topo, err := core.New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	const S = 2
	sc, stop, err := StartShardedCluster(topo, S, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	faults := Faults{Drop: 0.25, Dup: 0.2, Reorder: 0.2, Seed: 42}
	for i := 0; i < S; i++ {
		fastRetransmit(sc.Cluster(i), 25)
		sc.Cluster(i).SetDialWrapper(faults.Wrapper())
	}
	ctr := sc.NewCounter(2)
	defer ctr.Close()
	ctr.SetRetryPolicy(10, 60*time.Second)

	scrapeStop := make(chan struct{})
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		prev := make(map[string]int64)
		check := func() bool {
			for _, s := range ctr.Gather() {
				if s.Type != ctlplane.TypeCounter {
					continue
				}
				key := sampleKey(s)
				if last, ok := prev[key]; ok && s.Value < last {
					t.Errorf("counter %s went backwards: %d -> %d", key, last, s.Value)
					return false
				}
				prev[key] = s.Value
			}
			return true
		}
		for {
			select {
			case <-scrapeStop:
				check() // one final scrape after the workload lands
				return
			default:
				if !check() {
					return
				}
				time.Sleep(time.Millisecond)
			}
		}
	}()

	const procs, per, k = 4, 6, 5
	var wg sync.WaitGroup
	for pid := 0; pid < procs; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			var vals []int64
			for i := 0; i < per; i++ {
				var err error
				vals, err = ctr.IncBatch(pid+i, k, vals)
				if err != nil {
					t.Errorf("pid %d op %d: %v", pid, i, err)
					return
				}
			}
		}(pid)
	}
	wg.Wait()
	close(scrapeStop)
	<-scrapeDone
	if t.Failed() {
		return
	}

	// The chaos must actually have bitten for the monotonicity claim to
	// mean anything: with 25% drop the retransmit total cannot be zero.
	if ctr.Retransmits() == 0 {
		t.Fatal("fault injector produced no retransmits — chaos not exercised")
	}

	// And the exact count survives the whole circus: fresh fault-free
	// reads reconcile to the sequential total.
	for i := 0; i < S; i++ {
		sc.Cluster(i).SetDialWrapper(nil)
	}
	fresh := sc.NewCounter(1)
	defer fresh.Close()
	total, err := fresh.Read()
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(procs * per * k); total != want {
		t.Fatalf("post-chaos read = %d, want %d", total, want)
	}
}
