package udpnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/balancer"
	"repro/internal/network"
	"repro/internal/wire"
)

// Default retransmit budget: an exchange sends its request packet up to
// DefaultRetransmitAttempts times within DefaultRetransmitBudget of the
// first send, the per-attempt listening window growing along
// DefaultRetransmitTimer. Loss, duplication and reordering inside the
// budget are absorbed silently; only a shard unreachable for the whole
// budget surfaces an error.
const (
	DefaultRetransmitAttempts = 8
	DefaultRetransmitBudget   = 2 * time.Second
)

// DefaultRetransmitTimer is the jittered exponential retransmit
// schedule: the attempt-n response window is Delay(n) in
// [7.5ms, 15ms] doubling up to 200ms. Jitter keeps a fleet of clients
// that lost the same shard from retransmitting in lockstep.
var DefaultRetransmitTimer = wire.Backoff{Base: 15 * time.Millisecond, Max: 200 * time.Millisecond}

// Cluster is a client-side view of a UDP-sharded deployment: the
// topology plus shard addresses (shard i owns nodes and cells ≡ i mod
// len(addrs), as in tcpnet).
type Cluster struct {
	net      *network.Network
	addrs    []string
	stride   int64
	dialWrap func(net.Conn) net.Conn

	mu       sync.Mutex // guards policy, timer and pipeline against racing sessions
	policy   wire.RetryPolicy
	timer    wire.Backoff
	pipeline int
}

// NewCluster wires a topology to its shard addresses with the default
// retransmit policy.
func NewCluster(n *network.Network, addrs []string) *Cluster {
	return &Cluster{
		net:      n,
		addrs:    addrs,
		stride:   int64(n.OutWidth()),
		policy:   wire.RetryPolicy{Attempts: DefaultRetransmitAttempts, Budget: DefaultRetransmitBudget},
		timer:    DefaultRetransmitTimer,
		pipeline: 1,
	}
}

// SetDialWrapper installs a hook wrapping every socket a new session
// opens — the packet-path fault-injection point (see Faults) the chaos
// tests and countbench's E28 loss sweep use to drop, duplicate, reorder
// and delay datagrams deterministically. Pass nil to clear. Not safe to
// change while sessions are being created.
func (c *Cluster) SetDialWrapper(w func(net.Conn) net.Conn) { c.dialWrap = w }

// SetRetransmitPolicy bounds the per-exchange retransmit path of
// sessions created after the call: at most policy.Attempts sends of a
// request packet within policy.Budget of the first (Budget <= 0 removes
// the time bound), listening timer.Delay(n) after send n. Zero-valued
// timer fields take the wire defaults.
func (c *Cluster) SetRetransmitPolicy(policy wire.RetryPolicy, timer wire.Backoff) {
	if policy.Attempts < 1 {
		policy.Attempts = 1
	}
	c.mu.Lock()
	c.policy = policy
	c.timer = timer
	c.mu.Unlock()
}

// SetPipeline bounds how many request datagrams a session socket keeps
// outstanding at once for sessions created after the call. depth <= 1
// is stop-and-wait — the exact serial path every earlier E-series
// number was taken at; depth > 1 turns each socket into a bounded
// pipeline (see pipeline.go) that sends up to depth packets before the
// first reply and lets a layer fan out to every shard concurrently.
// The frames and their (client, seq) pairs are identical either way,
// so the exactly-once guarantee is untouched — the shard's per-client
// dedup window is thousands of frames deep against the few hundred a
// full window can hold.
func (c *Cluster) SetPipeline(depth int) {
	if depth < 1 {
		depth = 1
	}
	c.mu.Lock()
	c.pipeline = depth
	c.mu.Unlock()
}

// Pipeline returns the configured per-socket window depth.
func (c *Cluster) Pipeline() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pipeline
}

// Hops returns the number of frame round trips one single-token Inc
// costs — depth + 1, identical to tcpnet (the transports speak the same
// frames; UDP just packs more of them per datagram on batched paths).
func (c *Cluster) Hops() int { return c.net.Depth() + 1 }

// Session is a single-goroutine client: one connected UDP socket per
// shard. Every session speaks protocol v2 — each request packet opens
// with HELLO binding it to the session owner's client id and every
// mutating frame is seq-numbered — because over a lossy transport the
// retransmit path is not optional, and only deduplicated frames can be
// retransmitted safely.
type Session struct {
	c       *Cluster
	client  uint64
	conns   []net.Conn
	policy  wire.RetryPolicy
	timer   wire.Backoff
	rpcs    atomic.Int64  // request frames sent (retransmits included)
	packets atomic.Int64  // request datagrams sent, first sends and retransmits
	retrans atomic.Int64  // of which retransmits
	seqs    atomic.Uint64 // mutating-frame sequences outside a flight
	tape    *wire.SeqTape // set by a Counter flight for replayable sequences
	reqid   uint64        // request-id source (sessions are single-goroutine)

	// Pipelining state: the per-socket window depth (1 = stop-and-wait,
	// the serial path below), the lazily created per-socket pipes, and
	// the in-flight gauge the control plane reads.
	depth       int
	pipes       []*pipe
	outstanding atomic.Int64

	// Packet and batch walk scratch, reused across calls.
	sbuf    []byte
	rbuf    []byte
	frames  []wire.Frame
	fpkt    []wire.Frame
	ids     []int32
	vals    []int64
	pending []int64
	tally   []int64
	dist    []int64

	// Pipelined fan-out scratch: handles per layer, the handle-range cut
	// per shard, and per-shard id lists that must outlive the submit
	// phase (s.ids is rebuilt per shard, these survive until await).
	hnds  []*handle
	shCut []int
	shIDs [][]int32
}

// NewSession opens one socket per shard under a fresh client id.
func (c *Cluster) NewSession() (*Session, error) {
	return c.newSession(wire.NextClientID())
}

func (c *Cluster) newSession(client uint64) (*Session, error) {
	c.mu.Lock()
	policy, timer, depth := c.policy, c.timer, c.pipeline
	c.mu.Unlock()
	s := &Session{
		c:      c,
		client: client,
		conns:  make([]net.Conn, len(c.addrs)),
		policy: policy,
		timer:  timer,
		depth:  depth,
		rbuf:   make([]byte, wire.MaxDatagram),
	}
	for i, addr := range c.addrs {
		conn, err := net.Dial("udp", addr)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("udpnet: dial shard %d: %w", i, err)
		}
		if c.dialWrap != nil {
			conn = c.dialWrap(conn)
		}
		s.conns[i] = conn
	}
	return s, nil
}

// Close drops the session's sockets and reaps the pipe readers a
// pipelined session started; any packet still outstanding completes
// with the socket's close error.
func (s *Session) Close() {
	for _, p := range s.pipes {
		if p != nil {
			p.stop()
		}
	}
	for _, conn := range s.conns {
		if conn != nil {
			conn.Close()
		}
	}
	for _, p := range s.pipes {
		if p != nil {
			p.wg.Wait()
		}
	}
}

// SetPipeline sets this session's per-socket window depth. Only valid
// before the session's first exchange (a session is single-goroutine
// and so is this switch); pooled sessions inherit the cluster's depth
// at dial instead.
func (s *Session) SetPipeline(depth int) {
	if depth < 1 {
		depth = 1
	}
	s.depth = depth
}

// pipe lazily creates the pipelined state of one socket.
func (s *Session) pipe(shard int) *pipe {
	if s.pipes == nil {
		s.pipes = make([]*pipe, len(s.conns))
	}
	p := s.pipes[shard]
	if p == nil {
		p = newPipe(s, shard)
		s.pipes[shard] = p
	}
	return p
}

// RPCs returns the number of request frames this session has sent,
// retransmitted copies included — the same per-frame cost unit as
// tcpnet.Session.RPCs, so the transports' E25-E28 columns compare
// directly. At zero loss it equals the tcpnet bill exactly.
func (s *Session) RPCs() int64 { return s.rpcs.Load() }

// Packets returns the request datagrams sent (first sends plus
// retransmits) — the link-level cost a datagram transport actually
// pays; batched walks pack many frames into each.
func (s *Session) Packets() int64 { return s.packets.Load() }

// Retransmits returns how many of those datagrams were retransmissions.
func (s *Session) Retransmits() int64 { return s.retrans.Load() }

// Outstanding returns the request datagrams currently in flight on the
// session's pipelined sockets (implements xport.PacketSession).
func (s *Session) Outstanding() int64 { return s.outstanding.Load() }

// SetTape points the session's mutating-frame sequence source at a
// flight's rewindable tape (nil restores the session's own counter) —
// the xport pool calls it around every flight attempt so retries
// re-send identical (client, seq) pairs.
func (s *Session) SetTape(tape *wire.SeqTape) { s.tape = tape }

// Healthy implements the xport pool's checkout probe. A UDP socket has
// no peer state to go stale — failure lives entirely in the exchange
// retransmit path — so an idle session is always healthy.
func (s *Session) Healthy() bool { return true }

// nextSeq draws the next mutating-frame sequence number: from the
// owning Counter's tape during a flight (replayable on retry), from the
// session's own counter otherwise.
func (s *Session) nextSeq() uint64 {
	if s.tape != nil {
		return s.tape.Take()
	}
	return s.seqs.Add(1)
}

// mut builds one seq-numbered v2 mutating frame from its v1 op.
func (s *Session) mut(op byte, id int32, n int64) wire.Frame {
	return wire.Frame{Op: wire.V2Op(op), ID: id, Seq: s.nextSeq(), N: n}
}

// exchange performs one datagram round trip against a shard: a packet
// carrying HELLO plus the given frames, retransmitted under the
// session's policy until the matching response (by request id) arrives,
// its per-frame values appended to dst. Stale responses — to earlier
// exchanges, or duplicate replies to retransmitted ones — are discarded
// by id; the request id makes matching exact however the network
// reorders.
func (s *Session) exchange(shard int, frames []wire.Frame, dst []int64) ([]int64, error) {
	if s.depth > 1 {
		p := s.pipe(shard)
		h := p.submit(frames)
		p.flush()
		return p.await(h, dst)
	}
	s.reqid++
	s.fpkt = append(s.fpkt[:0], wire.Frame{Op: wire.OpHello, Client: s.client})
	s.fpkt = append(s.fpkt, frames...)
	s.sbuf = wire.AppendPacket(s.sbuf[:0], s.reqid, s.fpkt)
	want := len(frames)
	conn := s.conns[shard]

	var deadline time.Time
	if s.policy.Budget > 0 {
		deadline = time.Now().Add(s.policy.Budget)
	}
	attempts := s.policy.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			s.retrans.Add(1)
		}
		s.packets.Add(1)
		s.rpcs.Add(int64(want))
		if _, err := conn.Write(s.sbuf); err != nil {
			if errors.Is(err, net.ErrClosed) {
				return dst, err
			}
			lastErr = err // transient (e.g. surfaced ICMP): keep trying
		}
		wait := time.Now().Add(s.timer.Delay(attempt))
		if !deadline.IsZero() && wait.After(deadline) {
			wait = deadline
		}
		conn.SetReadDeadline(wait)
		for {
			n, err := conn.Read(s.rbuf)
			if err != nil {
				if errors.Is(err, net.ErrClosed) {
					return dst, err
				}
				lastErr = err
				break // timeout or transient: retransmit
			}
			if n < wire.PacketOverhead ||
				binary.BigEndian.Uint64(s.rbuf[:wire.PacketOverhead]) != s.reqid {
				continue // stale or foreign datagram
			}
			if n != wire.PacketOverhead+8*want {
				continue // corrupt: not a complete reply to this request
			}
			for i := 0; i < want; i++ {
				off := wire.PacketOverhead + 8*i
				dst = append(dst, int64(binary.BigEndian.Uint64(s.rbuf[off:off+8])))
			}
			return dst, nil
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			break
		}
	}
	return dst, fmt.Errorf("udpnet: shard %d: no response inside the retransmit budget: %w",
		shard, lastErr)
}

// chunkEnd returns the end of the datagram-sized chunk starting at
// start: the longest prefix fitting both the wire.MaxDatagram request
// budget and the 8-bytes-per-frame response budget. Serial and
// pipelined exchanges share it, so a depth switch never changes how
// frames pack into packets.
func chunkEnd(frames []wire.Frame, start int) int {
	reqBytes := wire.PacketOverhead + wire.FrameLen(wire.OpHello)
	respBytes := wire.PacketOverhead
	end := start
	for end < len(frames) {
		fl := wire.FrameLen(frames[end].Op)
		if end > start && (reqBytes+fl > wire.MaxDatagram || respBytes+8 > wire.MaxDatagram) {
			break
		}
		reqBytes += fl
		respBytes += 8
		end++
	}
	return end
}

// exchangeChunked splits a frame group into datagrams under the
// wire.MaxDatagram budget — bounding both the request bytes and the
// 8-bytes-per-frame response — and exchanges each chunk in turn. A
// pipelined session submits every chunk up front (the window keeps
// depth of them outstanding) and then collects the replies in order.
func (s *Session) exchangeChunked(shard int, frames []wire.Frame, dst []int64) ([]int64, error) {
	if s.depth > 1 {
		p := s.pipe(shard)
		h0 := len(s.hnds)
		s.hnds = s.submitChunks(p, frames, s.hnds)
		p.flush()
		var firstErr error
		for _, h := range s.hnds[h0:] {
			var err error
			dst, err = p.await(h, dst)
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
		s.hnds = s.hnds[:h0]
		return dst, firstErr
	}
	start := 0
	for start < len(frames) {
		end := chunkEnd(frames, start)
		var err error
		dst, err = s.exchange(shard, frames[start:end], dst)
		if err != nil {
			return dst, err
		}
		start = end
	}
	return dst, nil
}

// submitChunks submits a frame group to a pipe chunk by chunk (same
// packet boundaries as the serial path) and appends the handles.
func (s *Session) submitChunks(p *pipe, frames []wire.Frame, hnds []*handle) []*handle {
	start := 0
	for start < len(frames) {
		end := chunkEnd(frames, start)
		hnds = append(hnds, p.submit(frames[start:end]))
		start = end
	}
	return hnds
}

// Inc shepherds one token through the distributed network and returns
// its counter value: depth single-frame exchanges for the balancer
// crossings plus one for the exit cell, each reply steering the next
// hop. A retried Inc walks the identical path — the dedup windows
// replay the original ports for already-applied sequences.
func (s *Session) Inc(pid int) (int64, error) {
	shards := len(s.c.addrs)
	in := pid % s.c.net.InWidth()
	node, port := s.c.net.InputDest(in)
	var one [1]wire.Frame
	for node >= 0 {
		one[0] = s.mut(wire.OpStep, int32(node), 0)
		vals, err := s.exchange(node%shards, one[:], s.vals[:0])
		s.vals = vals[:0]
		if err != nil {
			return 0, err
		}
		node, port = s.c.net.Dest(node, int(vals[0]))
	}
	one[0] = s.mut(wire.OpCell, int32(port)|int32(s.c.stride)<<16, 0)
	vals, err := s.exchange(port%shards, one[:], s.vals[:0])
	s.vals = vals[:0]
	if err != nil {
		return 0, err
	}
	return vals[0], nil
}

// Dec shepherds one antitoken through the network (one-element
// DecBatch).
func (s *Session) Dec(pid int) (int64, error) {
	vals, err := s.DecBatch(pid, 1, nil)
	if err != nil {
		return 0, err
	}
	return vals[0], nil
}

// IncBatch performs k Fetch&Increment operations as one batched
// pipeline entering on wire pid mod w, appending the k claimed values
// to dst: one STEPN frame per balancer touched, one CELLN per exit wire
// touched, the frames packed into one datagram per (layer, shard) plus
// one per shard for the cell phase. k <= 0 sends nothing.
func (s *Session) IncBatch(pid, k int, dst []int64) ([]int64, error) {
	if k <= 0 {
		return dst, nil
	}
	return s.batch(pid%s.c.net.InWidth(), int64(k), false, dst)
}

// DecBatch is IncBatch for Fetch&Decrement: the batched frames carry a
// negative count and the k revoked values come back, newest-issued
// first per exit cell.
func (s *Session) DecBatch(pid, k int, dst []int64) ([]int64, error) {
	if k <= 0 {
		return dst, nil
	}
	return s.batch(pid%s.c.net.InWidth(), int64(k), true, dst)
}

// batch walks the topology layer by layer. Within a layer no balancer
// feeds another, so every pending group in it is final the moment the
// previous layer finished — the session packs the layer's STEPN frames
// by owning shard into as few datagrams as the MTU budget allows, folds
// the split arithmetic locally from the replied first indices (it knows
// the wiring and initial states, exactly like tcpnet), and finishes
// with the exit-cell CELLN frames packed per shard. The walk is
// deterministic in (wire, k, anti), so a retried flight re-sends the
// identical frame sequence and the dedup windows make it exactly-once.
func (s *Session) batch(in int, k int64, anti bool, dst []int64) ([]int64, error) {
	return s.Batch(in, k, anti, dst)
}

// Batch is the exported spelling of the layer-packed batch walk
// (implements xport.Session); `in` is the input wire, already reduced
// mod InWidth.
func (s *Session) Batch(in int, k int64, anti bool, dst []int64) ([]int64, error) {
	n := s.c.net
	shards := len(s.c.addrs)
	if s.pending == nil {
		s.pending = make([]int64, n.Size())
		s.tally = make([]int64, n.OutWidth())
	}
	pending, tally := s.pending, s.tally
	clear(tally)
	nd, port := n.InputDest(in)
	if nd < 0 {
		tally[port] += k
	} else {
		pending[nd] = k
	}
	for _, layer := range n.Layers() {
		if s.depth > 1 {
			// Pipelined fan-out: submit every shard's frames for this
			// layer before awaiting any reply — the layer costs one
			// round trip across ALL shards instead of one per shard.
			if err := s.stepLayerPipelined(layer, shards, pending, tally, anti); err != nil {
				clear(pending) // leave the scratch reusable
				return dst, err
			}
			continue
		}
		for shard := 0; shard < shards; shard++ {
			s.frames = s.frames[:0]
			s.ids = s.ids[:0]
			for _, id := range layer {
				if int(id)%shards != shard || pending[id] == 0 {
					continue
				}
				sendN := pending[id]
				if anti {
					sendN = -sendN
				}
				s.frames = append(s.frames, s.mut(wire.OpStepN, id, sendN))
				s.ids = append(s.ids, id)
			}
			if len(s.frames) == 0 {
				continue
			}
			vals, err := s.exchangeChunked(shard, s.frames, s.vals[:0])
			s.vals = vals
			if err != nil {
				clear(pending) // leave the scratch reusable
				return dst, err
			}
			s.applyStep(s.ids, vals, pending, tally)
		}
	}
	if s.depth > 1 {
		return s.cellsPipelined(shards, tally, anti, dst)
	}
	stride := s.c.stride
	for shard := 0; shard < shards; shard++ {
		s.frames = s.frames[:0]
		s.ids = s.ids[:0]
		for wireOut, cnt := range tally {
			if cnt == 0 || wireOut%shards != shard {
				continue
			}
			sendN := cnt
			if anti {
				sendN = -cnt
			}
			s.frames = append(s.frames, s.mut(wire.OpCellN, int32(wireOut)|int32(stride)<<16, sendN))
			s.ids = append(s.ids, int32(wireOut))
		}
		if len(s.frames) == 0 {
			continue
		}
		vals, err := s.exchangeChunked(shard, s.frames, s.vals[:0])
		s.vals = vals
		if err != nil {
			return dst, err
		}
		dst = s.applyCells(s.ids, vals, tally, anti, dst)
	}
	return dst, nil
}

// applyStep folds one shard's STEPN replies back into the walk: each
// first transition index distributes that balancer's pending group
// across its output ports, landing on next-layer balancers or the exit
// tally. Shared by the serial and pipelined paths so a depth switch
// cannot change the arithmetic.
func (s *Session) applyStep(ids []int32, vals []int64, pending, tally []int64) {
	n := s.c.net
	for i, id := range ids {
		c := pending[id]
		pending[id] = 0
		node := n.Node(int(id))
		q := node.Out()
		if cap(s.dist) < q {
			s.dist = make([]int64, q)
		}
		counts := balancer.DistributeInto(node.Balancer().Init()+vals[i], c, s.dist[:q])
		for p, cnt := range counts {
			if cnt == 0 {
				continue
			}
			dnd, dport := n.Dest(int(id), p)
			if dnd < 0 {
				tally[dport] += cnt
			} else {
				pending[dnd] += cnt
			}
		}
	}
}

// applyCells unfolds one shard's CELLN replies into the claimed values,
// newest-issued first per exit cell for antitokens. Shared by the
// serial and pipelined cell phases.
func (s *Session) applyCells(ids []int32, vals []int64, tally []int64, anti bool, dst []int64) []int64 {
	stride := s.c.stride
	for i, wireOut := range ids {
		cnt := tally[wireOut]
		end := vals[i]
		if anti {
			for v := end + stride*(cnt-1); v >= end; v -= stride {
				dst = append(dst, v)
			}
		} else {
			for v := end - stride*cnt; v < end; v += stride {
				dst = append(dst, v)
			}
		}
	}
	return dst
}

// fanScratch readies the per-shard fan-out scratch.
func (s *Session) fanScratch(shards int) {
	if s.shIDs == nil {
		s.shIDs = make([][]int32, len(s.conns))
		s.shCut = make([]int, len(s.conns)+1)
	}
	s.hnds = s.hnds[:0]
}

// stepLayerPipelined walks one layer with every shard in flight at
// once: build and submit each shard's STEPN chunks (drawing sequence
// numbers in the exact order the serial path would, so a retried
// flight replays identically), flush all pipes, then await shard by
// shard and fold the replies. The await order is the submit order, so
// the values line up with the ids by construction.
func (s *Session) stepLayerPipelined(layer []int32, shards int, pending, tally []int64, anti bool) error {
	s.fanScratch(shards)
	for shard := 0; shard < shards; shard++ {
		s.shCut[shard] = len(s.hnds)
		ids := s.shIDs[shard][:0]
		s.frames = s.frames[:0]
		for _, id := range layer {
			if int(id)%shards != shard || pending[id] == 0 {
				continue
			}
			sendN := pending[id]
			if anti {
				sendN = -sendN
			}
			s.frames = append(s.frames, s.mut(wire.OpStepN, id, sendN))
			ids = append(ids, id)
		}
		s.shIDs[shard] = ids
		if len(s.frames) != 0 {
			s.hnds = s.submitChunks(s.pipe(shard), s.frames, s.hnds)
		}
	}
	s.shCut[shards] = len(s.hnds)
	return s.awaitFan(shards, func(shard int, vals []int64) {
		s.applyStep(s.shIDs[shard], vals, pending, tally)
	})
}

// cellsPipelined is the exit-cell phase with every shard in flight at
// once, appending the claimed values in the same shard order as the
// serial path.
func (s *Session) cellsPipelined(shards int, tally []int64, anti bool, dst []int64) ([]int64, error) {
	s.fanScratch(shards)
	stride := s.c.stride
	for shard := 0; shard < shards; shard++ {
		s.shCut[shard] = len(s.hnds)
		ids := s.shIDs[shard][:0]
		s.frames = s.frames[:0]
		for wireOut, cnt := range tally {
			if cnt == 0 || wireOut%shards != shard {
				continue
			}
			sendN := cnt
			if anti {
				sendN = -cnt
			}
			s.frames = append(s.frames, s.mut(wire.OpCellN, int32(wireOut)|int32(stride)<<16, sendN))
			ids = append(ids, int32(wireOut))
		}
		s.shIDs[shard] = ids
		if len(s.frames) != 0 {
			s.hnds = s.submitChunks(s.pipe(shard), s.frames, s.hnds)
		}
	}
	s.shCut[shards] = len(s.hnds)
	err := s.awaitFan(shards, func(shard int, vals []int64) {
		dst = s.applyCells(s.shIDs[shard], vals, tally, anti, dst)
	})
	return dst, err
}

// awaitFan flushes every pipe touched by a fan-out, awaits the handles
// shard by shard in submit order, and applies each shard's reply
// values. On an error it keeps draining the remaining handles — every
// submitted handle is awaited exactly once — and reports the first.
func (s *Session) awaitFan(shards int, apply func(shard int, vals []int64)) error {
	for shard := 0; shard < shards; shard++ {
		if s.pipes != nil && s.pipes[shard] != nil {
			s.pipes[shard].flush()
		}
	}
	var firstErr error
	for shard := 0; shard < shards; shard++ {
		hs := s.hnds[s.shCut[shard]:s.shCut[shard+1]]
		if len(hs) == 0 {
			continue
		}
		vals := s.vals[:0]
		shardErr := firstErr
		for _, h := range hs {
			var err error
			vals, err = s.pipes[shard].await(h, vals)
			if err != nil && shardErr == nil {
				shardErr = err
			}
		}
		s.vals = vals
		if shardErr != nil {
			if firstErr == nil {
				firstErr = shardErr
			}
			continue
		}
		apply(shard, vals)
	}
	s.hnds = s.hnds[:0]
	return firstErr
}

// ReadCell returns exit cell w's current value without modifying it
// (op READ, idempotent so retransmit-safe without a sequence number).
func (s *Session) ReadCell(w int) (int64, error) {
	one := [1]wire.Frame{{Op: wire.OpRead, ID: int32(w)}}
	vals, err := s.exchange(w%len(s.c.addrs), one[:], s.vals[:0])
	s.vals = vals[:0]
	if err != nil {
		return 0, err
	}
	return vals[0], nil
}

// Read sums the exit cells into the cluster's net count (increments
// minus decrements), the READ frames packed per shard — a whole-cluster
// exact-count read costs one datagram exchange per shard (per MTU
// chunk). Only meaningful while the cluster is quiescent, like
// counter.Network.Issued.
func (s *Session) Read() (int64, error) {
	n := s.c.net
	shards := len(s.c.addrs)
	var total int64
	if s.depth > 1 {
		// Fan the READ frames out to every shard at once: a pipelined
		// whole-cluster read costs one round trip, not one per shard.
		s.fanScratch(shards)
		for shard := 0; shard < shards; shard++ {
			s.shCut[shard] = len(s.hnds)
			ids := s.shIDs[shard][:0]
			s.frames = s.frames[:0]
			for w := 0; w < n.OutWidth(); w++ {
				if w%shards != shard {
					continue
				}
				s.frames = append(s.frames, wire.Frame{Op: wire.OpRead, ID: int32(w)})
				ids = append(ids, int32(w))
			}
			s.shIDs[shard] = ids
			if len(s.frames) != 0 {
				s.hnds = s.submitChunks(s.pipe(shard), s.frames, s.hnds)
			}
		}
		s.shCut[shards] = len(s.hnds)
		err := s.awaitFan(shards, func(shard int, vals []int64) {
			for i, w := range s.shIDs[shard] {
				total += (vals[i] - int64(w)) / s.c.stride
			}
		})
		if err != nil {
			return 0, err
		}
		return total, nil
	}
	for shard := 0; shard < shards; shard++ {
		s.frames = s.frames[:0]
		s.ids = s.ids[:0]
		for w := 0; w < n.OutWidth(); w++ {
			if w%shards != shard {
				continue
			}
			s.frames = append(s.frames, wire.Frame{Op: wire.OpRead, ID: int32(w)})
			s.ids = append(s.ids, int32(w))
		}
		if len(s.frames) == 0 {
			continue
		}
		vals, err := s.exchangeChunked(shard, s.frames, s.vals[:0])
		s.vals = vals
		if err != nil {
			return 0, err
		}
		for i, w := range s.ids {
			total += (vals[i] - int64(w)) / s.c.stride
		}
	}
	return total, nil
}
