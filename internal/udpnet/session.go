package udpnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/balancer"
	"repro/internal/network"
	"repro/internal/wire"
)

// Default retransmit budget: an exchange sends its request packet up to
// DefaultRetransmitAttempts times within DefaultRetransmitBudget of the
// first send, the per-attempt listening window growing along
// DefaultRetransmitTimer. Loss, duplication and reordering inside the
// budget are absorbed silently; only a shard unreachable for the whole
// budget surfaces an error.
const (
	DefaultRetransmitAttempts = 8
	DefaultRetransmitBudget   = 2 * time.Second
)

// DefaultRetransmitTimer is the jittered exponential retransmit
// schedule: the attempt-n response window is Delay(n) in
// [7.5ms, 15ms] doubling up to 200ms. Jitter keeps a fleet of clients
// that lost the same shard from retransmitting in lockstep.
var DefaultRetransmitTimer = wire.Backoff{Base: 15 * time.Millisecond, Max: 200 * time.Millisecond}

// Cluster is a client-side view of a UDP-sharded deployment: the
// topology plus shard addresses (shard i owns nodes and cells ≡ i mod
// len(addrs), as in tcpnet).
type Cluster struct {
	net      *network.Network
	addrs    []string
	stride   int64
	dialWrap func(net.Conn) net.Conn

	mu     sync.Mutex // guards policy and timer against racing sessions
	policy wire.RetryPolicy
	timer  wire.Backoff
}

// NewCluster wires a topology to its shard addresses with the default
// retransmit policy.
func NewCluster(n *network.Network, addrs []string) *Cluster {
	return &Cluster{
		net:    n,
		addrs:  addrs,
		stride: int64(n.OutWidth()),
		policy: wire.RetryPolicy{Attempts: DefaultRetransmitAttempts, Budget: DefaultRetransmitBudget},
		timer:  DefaultRetransmitTimer,
	}
}

// SetDialWrapper installs a hook wrapping every socket a new session
// opens — the packet-path fault-injection point (see Faults) the chaos
// tests and countbench's E28 loss sweep use to drop, duplicate, reorder
// and delay datagrams deterministically. Pass nil to clear. Not safe to
// change while sessions are being created.
func (c *Cluster) SetDialWrapper(w func(net.Conn) net.Conn) { c.dialWrap = w }

// SetRetransmitPolicy bounds the per-exchange retransmit path of
// sessions created after the call: at most policy.Attempts sends of a
// request packet within policy.Budget of the first (Budget <= 0 removes
// the time bound), listening timer.Delay(n) after send n. Zero-valued
// timer fields take the wire defaults.
func (c *Cluster) SetRetransmitPolicy(policy wire.RetryPolicy, timer wire.Backoff) {
	if policy.Attempts < 1 {
		policy.Attempts = 1
	}
	c.mu.Lock()
	c.policy = policy
	c.timer = timer
	c.mu.Unlock()
}

// Hops returns the number of frame round trips one single-token Inc
// costs — depth + 1, identical to tcpnet (the transports speak the same
// frames; UDP just packs more of them per datagram on batched paths).
func (c *Cluster) Hops() int { return c.net.Depth() + 1 }

// Session is a single-goroutine client: one connected UDP socket per
// shard. Every session speaks protocol v2 — each request packet opens
// with HELLO binding it to the session owner's client id and every
// mutating frame is seq-numbered — because over a lossy transport the
// retransmit path is not optional, and only deduplicated frames can be
// retransmitted safely.
type Session struct {
	c       *Cluster
	client  uint64
	conns   []net.Conn
	policy  wire.RetryPolicy
	timer   wire.Backoff
	rpcs    atomic.Int64  // request frames sent (retransmits included)
	packets atomic.Int64  // request datagrams sent, first sends and retransmits
	retrans atomic.Int64  // of which retransmits
	seqs    atomic.Uint64 // mutating-frame sequences outside a flight
	tape    *wire.SeqTape // set by a Counter flight for replayable sequences
	reqid   uint64        // request-id source (sessions are single-goroutine)

	// Packet and batch walk scratch, reused across calls.
	sbuf    []byte
	rbuf    []byte
	frames  []wire.Frame
	fpkt    []wire.Frame
	ids     []int32
	vals    []int64
	pending []int64
	tally   []int64
	dist    []int64
}

// NewSession opens one socket per shard under a fresh client id.
func (c *Cluster) NewSession() (*Session, error) {
	return c.newSession(wire.NextClientID())
}

func (c *Cluster) newSession(client uint64) (*Session, error) {
	c.mu.Lock()
	policy, timer := c.policy, c.timer
	c.mu.Unlock()
	s := &Session{
		c:      c,
		client: client,
		conns:  make([]net.Conn, len(c.addrs)),
		policy: policy,
		timer:  timer,
		rbuf:   make([]byte, wire.MaxDatagram),
	}
	for i, addr := range c.addrs {
		conn, err := net.Dial("udp", addr)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("udpnet: dial shard %d: %w", i, err)
		}
		if c.dialWrap != nil {
			conn = c.dialWrap(conn)
		}
		s.conns[i] = conn
	}
	return s, nil
}

// Close drops the session's sockets.
func (s *Session) Close() {
	for _, conn := range s.conns {
		if conn != nil {
			conn.Close()
		}
	}
}

// RPCs returns the number of request frames this session has sent,
// retransmitted copies included — the same per-frame cost unit as
// tcpnet.Session.RPCs, so the transports' E25-E28 columns compare
// directly. At zero loss it equals the tcpnet bill exactly.
func (s *Session) RPCs() int64 { return s.rpcs.Load() }

// Packets returns the request datagrams sent (first sends plus
// retransmits) — the link-level cost a datagram transport actually
// pays; batched walks pack many frames into each.
func (s *Session) Packets() int64 { return s.packets.Load() }

// Retransmits returns how many of those datagrams were retransmissions.
func (s *Session) Retransmits() int64 { return s.retrans.Load() }

// nextSeq draws the next mutating-frame sequence number: from the
// owning Counter's tape during a flight (replayable on retry), from the
// session's own counter otherwise.
func (s *Session) nextSeq() uint64 {
	if s.tape != nil {
		return s.tape.Take()
	}
	return s.seqs.Add(1)
}

// mut builds one seq-numbered v2 mutating frame from its v1 op.
func (s *Session) mut(op byte, id int32, n int64) wire.Frame {
	return wire.Frame{Op: wire.V2Op(op), ID: id, Seq: s.nextSeq(), N: n}
}

// exchange performs one datagram round trip against a shard: a packet
// carrying HELLO plus the given frames, retransmitted under the
// session's policy until the matching response (by request id) arrives,
// its per-frame values appended to dst. Stale responses — to earlier
// exchanges, or duplicate replies to retransmitted ones — are discarded
// by id; the request id makes matching exact however the network
// reorders.
func (s *Session) exchange(shard int, frames []wire.Frame, dst []int64) ([]int64, error) {
	s.reqid++
	s.fpkt = append(s.fpkt[:0], wire.Frame{Op: wire.OpHello, Client: s.client})
	s.fpkt = append(s.fpkt, frames...)
	s.sbuf = wire.AppendPacket(s.sbuf[:0], s.reqid, s.fpkt)
	want := len(frames)
	conn := s.conns[shard]

	var deadline time.Time
	if s.policy.Budget > 0 {
		deadline = time.Now().Add(s.policy.Budget)
	}
	attempts := s.policy.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			s.retrans.Add(1)
		}
		s.packets.Add(1)
		s.rpcs.Add(int64(want))
		if _, err := conn.Write(s.sbuf); err != nil {
			if errors.Is(err, net.ErrClosed) {
				return dst, err
			}
			lastErr = err // transient (e.g. surfaced ICMP): keep trying
		}
		wait := time.Now().Add(s.timer.Delay(attempt))
		if !deadline.IsZero() && wait.After(deadline) {
			wait = deadline
		}
		conn.SetReadDeadline(wait)
		for {
			n, err := conn.Read(s.rbuf)
			if err != nil {
				if errors.Is(err, net.ErrClosed) {
					return dst, err
				}
				lastErr = err
				break // timeout or transient: retransmit
			}
			if n < wire.PacketOverhead ||
				binary.BigEndian.Uint64(s.rbuf[:wire.PacketOverhead]) != s.reqid {
				continue // stale or foreign datagram
			}
			if n != wire.PacketOverhead+8*want {
				continue // corrupt: not a complete reply to this request
			}
			for i := 0; i < want; i++ {
				off := wire.PacketOverhead + 8*i
				dst = append(dst, int64(binary.BigEndian.Uint64(s.rbuf[off:off+8])))
			}
			return dst, nil
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			break
		}
	}
	return dst, fmt.Errorf("udpnet: shard %d: no response inside the retransmit budget: %w",
		shard, lastErr)
}

// exchangeChunked splits a frame group into datagrams under the
// wire.MaxDatagram budget — bounding both the request bytes and the
// 8-bytes-per-frame response — and exchanges each chunk in turn.
func (s *Session) exchangeChunked(shard int, frames []wire.Frame, dst []int64) ([]int64, error) {
	helloLen := wire.FrameLen(wire.OpHello)
	start := 0
	for start < len(frames) {
		reqBytes := wire.PacketOverhead + helloLen
		respBytes := wire.PacketOverhead
		end := start
		for end < len(frames) {
			fl := wire.FrameLen(frames[end].Op)
			if end > start && (reqBytes+fl > wire.MaxDatagram || respBytes+8 > wire.MaxDatagram) {
				break
			}
			reqBytes += fl
			respBytes += 8
			end++
		}
		var err error
		dst, err = s.exchange(shard, frames[start:end], dst)
		if err != nil {
			return dst, err
		}
		start = end
	}
	return dst, nil
}

// Inc shepherds one token through the distributed network and returns
// its counter value: depth single-frame exchanges for the balancer
// crossings plus one for the exit cell, each reply steering the next
// hop. A retried Inc walks the identical path — the dedup windows
// replay the original ports for already-applied sequences.
func (s *Session) Inc(pid int) (int64, error) {
	shards := len(s.c.addrs)
	in := pid % s.c.net.InWidth()
	node, port := s.c.net.InputDest(in)
	var one [1]wire.Frame
	for node >= 0 {
		one[0] = s.mut(wire.OpStep, int32(node), 0)
		vals, err := s.exchange(node%shards, one[:], s.vals[:0])
		s.vals = vals[:0]
		if err != nil {
			return 0, err
		}
		node, port = s.c.net.Dest(node, int(vals[0]))
	}
	one[0] = s.mut(wire.OpCell, int32(port)|int32(s.c.stride)<<16, 0)
	vals, err := s.exchange(port%shards, one[:], s.vals[:0])
	s.vals = vals[:0]
	if err != nil {
		return 0, err
	}
	return vals[0], nil
}

// Dec shepherds one antitoken through the network (one-element
// DecBatch).
func (s *Session) Dec(pid int) (int64, error) {
	vals, err := s.DecBatch(pid, 1, nil)
	if err != nil {
		return 0, err
	}
	return vals[0], nil
}

// IncBatch performs k Fetch&Increment operations as one batched
// pipeline entering on wire pid mod w, appending the k claimed values
// to dst: one STEPN frame per balancer touched, one CELLN per exit wire
// touched, the frames packed into one datagram per (layer, shard) plus
// one per shard for the cell phase. k <= 0 sends nothing.
func (s *Session) IncBatch(pid, k int, dst []int64) ([]int64, error) {
	if k <= 0 {
		return dst, nil
	}
	return s.batch(pid%s.c.net.InWidth(), int64(k), false, dst)
}

// DecBatch is IncBatch for Fetch&Decrement: the batched frames carry a
// negative count and the k revoked values come back, newest-issued
// first per exit cell.
func (s *Session) DecBatch(pid, k int, dst []int64) ([]int64, error) {
	if k <= 0 {
		return dst, nil
	}
	return s.batch(pid%s.c.net.InWidth(), int64(k), true, dst)
}

// batch walks the topology layer by layer. Within a layer no balancer
// feeds another, so every pending group in it is final the moment the
// previous layer finished — the session packs the layer's STEPN frames
// by owning shard into as few datagrams as the MTU budget allows, folds
// the split arithmetic locally from the replied first indices (it knows
// the wiring and initial states, exactly like tcpnet), and finishes
// with the exit-cell CELLN frames packed per shard. The walk is
// deterministic in (wire, k, anti), so a retried flight re-sends the
// identical frame sequence and the dedup windows make it exactly-once.
func (s *Session) batch(in int, k int64, anti bool, dst []int64) ([]int64, error) {
	n := s.c.net
	shards := len(s.c.addrs)
	if s.pending == nil {
		s.pending = make([]int64, n.Size())
		s.tally = make([]int64, n.OutWidth())
	}
	pending, tally := s.pending, s.tally
	clear(tally)
	nd, port := n.InputDest(in)
	if nd < 0 {
		tally[port] += k
	} else {
		pending[nd] = k
	}
	for _, layer := range n.Layers() {
		for shard := 0; shard < shards; shard++ {
			s.frames = s.frames[:0]
			s.ids = s.ids[:0]
			for _, id := range layer {
				if int(id)%shards != shard || pending[id] == 0 {
					continue
				}
				sendN := pending[id]
				if anti {
					sendN = -sendN
				}
				s.frames = append(s.frames, s.mut(wire.OpStepN, id, sendN))
				s.ids = append(s.ids, id)
			}
			if len(s.frames) == 0 {
				continue
			}
			vals, err := s.exchangeChunked(shard, s.frames, s.vals[:0])
			s.vals = vals
			if err != nil {
				clear(pending) // leave the scratch reusable
				return dst, err
			}
			for i, id := range s.ids {
				c := pending[id]
				pending[id] = 0
				node := n.Node(int(id))
				q := node.Out()
				if cap(s.dist) < q {
					s.dist = make([]int64, q)
				}
				counts := balancer.DistributeInto(node.Balancer().Init()+vals[i], c, s.dist[:q])
				for p, cnt := range counts {
					if cnt == 0 {
						continue
					}
					dnd, dport := n.Dest(int(id), p)
					if dnd < 0 {
						tally[dport] += cnt
					} else {
						pending[dnd] += cnt
					}
				}
			}
		}
	}
	stride := s.c.stride
	for shard := 0; shard < shards; shard++ {
		s.frames = s.frames[:0]
		s.ids = s.ids[:0]
		for wireOut, cnt := range tally {
			if cnt == 0 || wireOut%shards != shard {
				continue
			}
			sendN := cnt
			if anti {
				sendN = -cnt
			}
			s.frames = append(s.frames, s.mut(wire.OpCellN, int32(wireOut)|int32(stride)<<16, sendN))
			s.ids = append(s.ids, int32(wireOut))
		}
		if len(s.frames) == 0 {
			continue
		}
		vals, err := s.exchangeChunked(shard, s.frames, s.vals[:0])
		s.vals = vals
		if err != nil {
			return dst, err
		}
		for i, wireOut := range s.ids {
			cnt := tally[wireOut]
			end := vals[i]
			if anti {
				for v := end + stride*(cnt-1); v >= end; v -= stride {
					dst = append(dst, v)
				}
			} else {
				for v := end - stride*cnt; v < end; v += stride {
					dst = append(dst, v)
				}
			}
		}
	}
	return dst, nil
}

// ReadCell returns exit cell w's current value without modifying it
// (op READ, idempotent so retransmit-safe without a sequence number).
func (s *Session) ReadCell(w int) (int64, error) {
	one := [1]wire.Frame{{Op: wire.OpRead, ID: int32(w)}}
	vals, err := s.exchange(w%len(s.c.addrs), one[:], s.vals[:0])
	s.vals = vals[:0]
	if err != nil {
		return 0, err
	}
	return vals[0], nil
}

// Read sums the exit cells into the cluster's net count (increments
// minus decrements), the READ frames packed per shard — a whole-cluster
// exact-count read costs one datagram exchange per shard (per MTU
// chunk). Only meaningful while the cluster is quiescent, like
// counter.Network.Issued.
func (s *Session) Read() (int64, error) {
	n := s.c.net
	shards := len(s.c.addrs)
	var total int64
	for shard := 0; shard < shards; shard++ {
		s.frames = s.frames[:0]
		s.ids = s.ids[:0]
		for w := 0; w < n.OutWidth(); w++ {
			if w%shards != shard {
				continue
			}
			s.frames = append(s.frames, wire.Frame{Op: wire.OpRead, ID: int32(w)})
			s.ids = append(s.ids, int32(w))
		}
		if len(s.frames) == 0 {
			continue
		}
		vals, err := s.exchangeChunked(shard, s.frames, s.vals[:0])
		s.vals = vals
		if err != nil {
			return 0, err
		}
		for i, w := range s.ids {
			total += (vals[i] - int64(w)) / s.c.stride
		}
	}
	return total, nil
}
