package udpnet

import (
	"math/rand"
	"net"
	"sync"
	"time"
)

// Faults is the deterministic packet-path fault injector: probabilities
// per datagram of being dropped, duplicated, or held back to be
// reordered behind the next send, plus an optional extra delay. Drop
// applies to BOTH directions (requests on Write, responses on Read);
// duplication, reordering and delay act on the request path, where a
// duplicate arriving late also exercises the response side's stale-
// reply discard. All randomness flows from Seed through one mutex-
// guarded source, so a single-session run replays exactly.
//
// Install on a cluster before opening sessions:
//
//	cluster.SetDialWrapper(udpnet.Faults{Drop: 0.25, Dup: 0.2, Reorder: 0.2, Seed: 1}.Wrapper())
type Faults struct {
	Drop      float64       // P(datagram vanishes), each direction
	Dup       float64       // P(request datagram sent twice)
	Reorder   float64       // P(request held and sent after the next one)
	DelayProb float64       // P(request delivered Delay late instead of now)
	Delay     time.Duration // the late-delivery latency
	Seed      int64
}

// Wrapper returns a Cluster.SetDialWrapper hook applying the faults to
// every socket the cluster's sessions open. All sockets share one
// seeded source.
func (f Faults) Wrapper() func(net.Conn) net.Conn {
	shared := &faultState{f: f, rng: rand.New(rand.NewSource(f.Seed))}
	return func(conn net.Conn) net.Conn {
		return &faultConn{Conn: conn, st: shared}
	}
}

type faultState struct {
	f   Faults
	mu  sync.Mutex
	rng *rand.Rand
}

// faultConn applies the shared fault plan to one socket. Held and
// delayed datagrams are copies — callers reuse their write buffers.
type faultConn struct {
	net.Conn
	st   *faultState
	held []byte // a request waiting to be reordered behind the next one
}

func (fc *faultConn) Write(b []byte) (int, error) {
	st := fc.st
	st.mu.Lock()
	drop := st.rng.Float64() < st.f.Drop
	dup := st.rng.Float64() < st.f.Dup
	hold := st.rng.Float64() < st.f.Reorder
	delay := st.f.Delay > 0 && st.rng.Float64() < st.f.DelayProb
	held := fc.held
	fc.held = nil
	if drop {
		st.mu.Unlock()
		fc.flush(held)
		return len(b), nil
	}
	if hold && held == nil {
		fc.held = append([]byte(nil), b...)
		st.mu.Unlock()
		return len(b), nil
	}
	st.mu.Unlock()
	if delay {
		pkt := append([]byte(nil), b...)
		conn := fc.Conn
		time.AfterFunc(st.f.Delay, func() { conn.Write(pkt) })
		fc.flush(held)
		return len(b), nil
	}
	if _, err := fc.Conn.Write(b); err != nil {
		return 0, err
	}
	if dup {
		fc.Conn.Write(b)
	}
	fc.flush(held)
	return len(b), nil
}

// flush sends a previously held datagram AFTER its successor went out —
// the reordering.
func (fc *faultConn) flush(held []byte) {
	if held != nil {
		fc.Conn.Write(held)
	}
}

func (fc *faultConn) Read(b []byte) (int, error) {
	for {
		n, err := fc.Conn.Read(b)
		if err != nil {
			return n, err
		}
		st := fc.st
		st.mu.Lock()
		drop := st.rng.Float64() < st.f.Drop
		st.mu.Unlock()
		if !drop {
			return n, nil
		}
	}
}
