//go:build linux && !countnet_nommsg

package udpnet

// Syscall numbers for the mmsg pair on linux/arm64 (the generic
// asm-generic table). sendmmsg postdates the syscall package's API
// freeze, so its number is pinned here. Both are ABI-stable forever.
const (
	sysRECVMMSG = 243
	sysSENDMMSG = 269
)
