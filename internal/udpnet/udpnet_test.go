package udpnet

import (
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/seq"
	"repro/internal/tcpnet"
	"repro/internal/wire"
)

// startCluster launches `shards` UDP shard servers on loopback and
// registers their shutdown with the test.
func startCluster(t *testing.T, topo *network.Network, shards int) *Cluster {
	t.Helper()
	c, stop, err := StartCluster(topo, shards)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stop)
	return c
}

// The headline test: a C(4,8) counting network deployed across 3 UDP
// shards hands out dense unique values to concurrent client sessions.
func TestUDPCounterDense(t *testing.T) {
	topo, err := core.New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	cluster := startCluster(t, topo, 3)

	const procs, per = 6, 50
	vals := make([][]int64, procs)
	var wg sync.WaitGroup
	for pid := 0; pid < procs; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			sess, err := cluster.NewSession()
			if err != nil {
				t.Error(err)
				return
			}
			defer sess.Close()
			for i := 0; i < per; i++ {
				v, err := sess.Inc(pid)
				if err != nil {
					t.Error(err)
					return
				}
				vals[pid] = append(vals[pid], v)
			}
		}(pid)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	var all []int64
	for _, s := range vals {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i, v := range all {
		if v != int64(i) {
			t.Fatalf("values not dense at %d: %d", i, v)
		}
	}
}

// Batched pipelines on a live UDP cluster claim exactly the same dense
// value ranges as the in-memory batched counter: sequential equivalence
// against local replay, per constructor family — the layered datagram
// walk must be arithmetically identical to tcpnet's per-frame walk.
func TestUDPBatchMatchesLocal(t *testing.T) {
	for _, fam := range []struct {
		name  string
		build func() (*network.Network, error)
	}{
		{"C(4,8)", func() (*network.Network, error) { return core.New(4, 8) }},
		{"C(8,16)", func() (*network.Network, error) { return core.New(8, 16) }},
	} {
		t.Run(fam.name, func(t *testing.T) {
			topo, err := fam.build()
			if err != nil {
				t.Fatal(err)
			}
			cluster := startCluster(t, topo, 3)
			sess, err := cluster.NewSession()
			if err != nil {
				t.Fatal(err)
			}
			defer sess.Close()

			local, err := fam.build()
			if err != nil {
				t.Fatal(err)
			}
			w := topo.InWidth()
			tally := make([]int64, topo.OutWidth())
			cells := make([]int64, topo.OutWidth())
			for i := range cells {
				cells[i] = int64(i)
			}
			stride := int64(topo.OutWidth())
			for round, k := range []int{5, 1, 17, 64, 3} {
				in := round % w
				got, err := sess.IncBatch(in, k, nil)
				if err != nil {
					t.Fatal(err)
				}
				clear(tally)
				local.TraverseBatchInto(in, int64(k), tally)
				var want []int64
				for i, cnt := range tally {
					for j := int64(0); j < cnt; j++ {
						want = append(want, cells[i]+j*stride)
					}
					cells[i] += cnt * stride
				}
				sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
				sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
				if !seq.Equal(got, want) {
					t.Fatalf("round %d: cluster batch %v, local replay %v", round, got, want)
				}
			}
		})
	}
}

// DecBatch revokes exactly what IncBatch claimed and rewinds the
// cluster to its origin; the READ side observes it all without
// mutating.
func TestUDPDecBatchRevokesAndRead(t *testing.T) {
	topo, err := core.New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	cluster := startCluster(t, topo, 2)
	sess, err := cluster.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	claimed, err := sess.IncBatch(1, 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // twice: reading must not mutate
		if n, err := sess.Read(); err != nil || n != 50 {
			t.Fatalf("Read #%d = (%d, %v), want (50, nil)", i, n, err)
		}
	}
	revoked, err := sess.DecBatch(2, 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(claimed, func(i, j int) bool { return claimed[i] < claimed[j] })
	sort.Slice(revoked, func(i, j int) bool { return revoked[i] < revoked[j] })
	if !seq.Equal(claimed, revoked) {
		t.Fatalf("revoked %v != claimed %v", revoked, claimed)
	}
	if n, err := sess.Read(); err != nil || n != 0 {
		t.Fatalf("Read after full revocation = (%d, %v), want (0, nil)", n, err)
	}
	if v, err := sess.Inc(0); err != nil || v != 0 {
		t.Fatalf("Inc after full revocation = (%d, %v), want (0, nil)", v, err)
	}
}

// The cross-transport economics gate: at zero loss the UDP frame bill
// for a batched pipeline is IDENTICAL to tcpnet's round-trip bill for
// the same topology and batch (one STEPN per balancer touched, one
// CELLN per exit wire touched — the E25/E27 1.05 rpcs/token floor at
// k=64 carries over exactly), while the datagram bill is strictly
// smaller thanks to MTU packing.
func TestUDPBatchRPCsMatchTCPFloor(t *testing.T) {
	build := func() (*network.Network, error) { return core.New(8, 24) }
	topo, err := build()
	if err != nil {
		t.Fatal(err)
	}
	cluster := startCluster(t, topo, 3)
	usess, err := cluster.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer usess.Close()

	ttopo, err := build()
	if err != nil {
		t.Fatal(err)
	}
	var tservers []*tcpnet.Shard
	taddrs := make([]string, 3)
	for i := 0; i < 3; i++ {
		s, err := tcpnet.StartShard("127.0.0.1:0", ttopo, i, 3)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		tservers = append(tservers, s)
		taddrs[i] = s.Addr()
	}
	_ = tservers
	tsess, err := tcpnet.NewCluster(ttopo, taddrs).NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer tsess.Close()

	const batches, k = 16, 64
	for i := 0; i < batches; i++ {
		if _, err := usess.IncBatch(i, k, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := tsess.IncBatch(i, k, nil); err != nil {
			t.Fatal(err)
		}
	}
	if usess.RPCs() != tsess.RPCs() {
		t.Fatalf("frame bills diverge at zero loss: udp %d, tcp %d", usess.RPCs(), tsess.RPCs())
	}
	if usess.Retransmits() != 0 {
		t.Fatalf("lossless loopback run retransmitted %d packets", usess.Retransmits())
	}
	if p := usess.Packets(); p >= usess.RPCs() {
		t.Fatalf("packing won nothing: %d packets for %d frames", p, usess.RPCs())
	}
	t.Logf("k=%d: %d frames in %d datagrams (%.1f frames/packet), tcp bill %d rpcs",
		k, usess.RPCs(), usess.Packets(),
		float64(usess.RPCs())/float64(usess.Packets()), tsess.RPCs())
}

// sizeRecorder captures every request datagram's size.
type sizeRecorder struct {
	net.Conn
	mu    *sync.Mutex
	sizes *[]int
}

func (r *sizeRecorder) Write(b []byte) (int, error) {
	r.mu.Lock()
	*r.sizes = append(*r.sizes, len(b))
	r.mu.Unlock()
	return r.Conn.Write(b)
}

// Every datagram the session builds stays within the MTU budget, even
// for batches and cluster reads wide enough to need chunking.
func TestUDPPacketBudget(t *testing.T) {
	topo, err := core.New(16, 256) // 256 exit cells on few shards forces READ chunking
	if err != nil {
		t.Fatal(err)
	}
	cluster := startCluster(t, topo, 2)
	var mu sync.Mutex
	var sizes []int
	cluster.SetDialWrapper(func(conn net.Conn) net.Conn {
		return &sizeRecorder{Conn: conn, mu: &mu, sizes: &sizes}
	})
	sess, err := cluster.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.IncBatch(0, 4096, nil); err != nil {
		t.Fatal(err)
	}
	if n, err := sess.Read(); err != nil || n != 4096 {
		t.Fatalf("Read = (%d, %v), want (4096, nil)", n, err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(sizes) == 0 {
		t.Fatal("recorded no datagrams")
	}
	for i, n := range sizes {
		if n > wire.MaxDatagram {
			t.Fatalf("datagram %d is %d bytes, budget %d", i, n, wire.MaxDatagram)
		}
	}
}

// Malformed or violating packets are dropped without a reply and
// without corrupting state: garbage, truncation, v1 mutating ops,
// v2 frames with no HELLO, zero counts, unowned ids. The shard keeps
// serving well-formed sessions throughout.
func TestUDPMalformedPackets(t *testing.T) {
	topo, err := core.New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	cluster := startCluster(t, topo, 1)
	addr := cluster.addrs[0]

	send := func(t *testing.T, pkt []byte) {
		t.Helper()
		conn, err := net.Dial("udp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if _, err := conn.Write(pkt); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
		var buf [64]byte
		if n, err := conn.Read(buf[:]); err == nil {
			t.Fatalf("shard replied %d bytes to a violating packet", n)
		}
	}
	hello := wire.Frame{Op: wire.OpHello, Client: 77}
	pack := func(frames ...wire.Frame) []byte {
		return wire.AppendPacket(nil, 1, frames)
	}
	t.Run("garbage", func(t *testing.T) { send(t, []byte{1, 2, 3, 4, 5, 6, 7, 8, 99}) })
	t.Run("short", func(t *testing.T) { send(t, []byte{1, 2, 3}) })
	t.Run("truncated-frame", func(t *testing.T) {
		pkt := pack(hello, wire.Frame{Op: wire.OpStepN2, ID: 0, Seq: 1, N: 4})
		send(t, pkt[:len(pkt)-3])
	})
	t.Run("v1-mutating", func(t *testing.T) {
		send(t, pack(hello, wire.Frame{Op: wire.OpStepN, ID: 0, N: 4}))
	})
	t.Run("v2-before-hello", func(t *testing.T) {
		send(t, pack(wire.Frame{Op: wire.OpStep2, ID: 0, Seq: 1}))
	})
	t.Run("zero-count", func(t *testing.T) {
		send(t, pack(hello, wire.Frame{Op: wire.OpStepN2, ID: 0, Seq: 1, N: 0}))
	})
	t.Run("unowned-id", func(t *testing.T) {
		send(t, pack(hello, wire.Frame{Op: wire.OpStep2, ID: 9999, Seq: 1}))
	})
	t.Run("unowned-read", func(t *testing.T) {
		send(t, pack(wire.Frame{Op: wire.OpRead, ID: 9999}))
	})

	// The shard is still healthy, and the violating packets mutated
	// nothing: a well-formed session starts from value 0.
	sess, err := cluster.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if v, err := sess.Inc(0); err != nil || v != 0 {
		t.Fatalf("Inc after malformed traffic = (%d, %v), want (0, nil)", v, err)
	}
}

// DedupConfig threads down to the UDP shard's exactly-once table.
func TestUDPDedupConfigThreaded(t *testing.T) {
	topo, err := core.New(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ShardConfig{Dedup: wire.DedupConfig{Window: 16, Clients: 4}}
	s, err := StartShardConfig("127.0.0.1:0", topo, 0, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.dedup.Config(); got.Window != cfg.Dedup.Window || got.Clients != cfg.Dedup.Clients {
		t.Fatalf("shard dedup config = %+v, want %+v", got, cfg.Dedup)
	}
	cluster := NewCluster(topo, []string{s.Addr()})
	sess, err := cluster.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if v, err := sess.Inc(0); err != nil || v != 0 {
		t.Fatalf("Inc = (%d, %v), want (0, nil)", v, err)
	}
}
