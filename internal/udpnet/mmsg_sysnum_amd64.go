//go:build linux && !countnet_nommsg

package udpnet

// Syscall numbers for the mmsg pair on linux/amd64. recvmmsg (2.6.33)
// predates the syscall package's API freeze and is exported there;
// sendmmsg landed in linux 3.0, after the freeze, so its number is
// pinned here. Both are ABI-stable forever.
const (
	sysRECVMMSG = 299
	sysSENDMMSG = 307
)
