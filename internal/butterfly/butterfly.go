// Package butterfly implements the butterfly networks of Section 5 of the
// paper: the forward butterfly D(w) (recursive halves followed by a ladder
// layer) and the backward butterfly E(w) (a ladder layer followed by
// recursive halves). Both are regular width-w networks of depth lgw built
// from (2,2)-balancers; they are isomorphic (Lemma 5.3) and lgw-smoothing
// (Lemma 5.2). The first lgw layers of the counting network C(w,t) are a
// backward butterfly with widened last-layer balancers (Fig. 16), which is
// how the butterfly enters the contention analysis of Section 6.
package butterfly

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/network"
)

// validWidth reports whether w is a power of two >= 1.
func validWidth(w int) bool { return w >= 1 && w&(w-1) == 0 }

// NewForward constructs the forward butterfly D(w) (§5.1, Fig. 14 top):
//
//   - D(1) is a wire.
//   - D(w) is two copies of D(w/2) side by side whose concatenated outputs
//     feed a ladder L(w).
func NewForward(w int) (*network.Network, error) {
	if !validWidth(w) {
		return nil, fmt.Errorf("butterfly: width %d is not a power of two", w)
	}
	b, in := network.NewBuilder(fmt.Sprintf("D(%d)", w), w)
	out := BuildForward(b, in)
	return b.Finalize(out)
}

// BuildForward appends D(len(in)) to a builder and returns its outputs.
func BuildForward(b *network.Builder, in []network.Port) []network.Port {
	w := len(in)
	if w == 1 {
		return in
	}
	g := BuildForward(b, in[:w/2])
	h := BuildForward(b, in[w/2:])
	first, second := core.Ladder(b, append(append([]network.Port{}, g...), h...))
	return append(first, second...)
}

// NewBackward constructs the backward butterfly E(w) (§5.2, Fig. 14
// bottom):
//
//   - E(1) is a wire.
//   - E(w) is a ladder L(w) whose first and second output halves feed two
//     copies of E(w/2); the outputs are the concatenation of the copies'.
func NewBackward(w int) (*network.Network, error) {
	if !validWidth(w) {
		return nil, fmt.Errorf("butterfly: width %d is not a power of two", w)
	}
	b, in := network.NewBuilder(fmt.Sprintf("E(%d)", w), w)
	out := BuildBackward(b, in)
	return b.Finalize(out)
}

// BuildBackward appends E(len(in)) to a builder and returns its outputs.
func BuildBackward(b *network.Builder, in []network.Port) []network.Port {
	w := len(in)
	if w == 1 {
		return in
	}
	first, second := core.Ladder(b, in)
	g := BuildBackward(b, first)
	h := BuildBackward(b, second)
	return append(g, h...)
}

// FindIsomorphism searches for input/output permutations witnessing that
// networks A and B (equal widths) are behaviourally isomorphic in the
// quiescent sense of Lemma 2.7: permutations piIn, piOut such that for
// every input x, B.Quiescent(piIn(x)) == piOut(A.Quiescent(x)).
//
// The search space is all pairs of permutations, so it is only feasible for
// small widths (w <= 6 in practice for the input side); the candidate set
// is pruned by testing each piIn against a fixed battery of probe inputs
// before scanning piOut. Returns (piIn, piOut, true) on success.
//
// This is a *witness checker* for the structural Lemma 5.3 on small
// instances; for large widths the lemma's measurable consequence (equal
// smoothing behaviour) is validated instead.
func FindIsomorphism(a, b *network.Network, probes [][]int64) (piIn, piOut []int, ok bool) {
	w, t := a.InWidth(), a.OutWidth()
	if b.InWidth() != w || b.OutWidth() != t {
		return nil, nil, false
	}
	// Precompute A's outputs on the probes.
	aOut := make([][]int64, len(probes))
	for i, x := range probes {
		y, err := a.Quiescent(x)
		if err != nil {
			return nil, nil, false
		}
		aOut[i] = y
	}
	perms := permutations(w)
	outPerms := permutations(t)
	apply := func(p []int, x []int64) []int64 {
		y := make([]int64, len(x))
		for i, v := range x {
			y[p[i]] = v
		}
		return y
	}
	for _, pin := range perms {
		// Compute B's outputs under this input permutation.
		bOut := make([][]int64, len(probes))
		for i, x := range probes {
			y, err := b.Quiescent(apply(pin, x))
			if err != nil {
				return nil, nil, false
			}
			bOut[i] = y
		}
		// Look for a single output permutation mapping every aOut to bOut.
		for _, pout := range outPerms {
			match := true
			for i := range probes {
				z := apply(pout, aOut[i])
				for j := range z {
					if z[j] != bOut[i][j] {
						match = false
						break
					}
				}
				if !match {
					break
				}
			}
			if match {
				return pin, pout, true
			}
		}
	}
	return nil, nil, false
}

// permutations returns all permutations of {0..n-1}. Factorial blow-up;
// callers keep n tiny.
func permutations(n int) [][]int {
	base := make([]int, n)
	for i := range base {
		base[i] = i
	}
	var out [][]int
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			cp := make([]int, n)
			copy(cp, base)
			out = append(out, cp)
			return
		}
		for i := k; i < n; i++ {
			base[k], base[i] = base[i], base[k]
			rec(k + 1)
			base[k], base[i] = base[i], base[k]
		}
	}
	rec(0)
	return out
}
