package butterfly

import (
	"math/rand"
	"testing"

	"repro/internal/network"
	"repro/internal/seq"
)

func log2(x int) int {
	k := 0
	for x > 1 {
		x >>= 1
		k++
	}
	return k
}

// E5 / Lemma 5.1: depth(D(w)) = lgw; same for E(w).
func TestDepth(t *testing.T) {
	for _, w := range []int{1, 2, 4, 8, 16, 32, 64} {
		d, err := NewForward(w)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewBackward(w)
		if err != nil {
			t.Fatal(err)
		}
		if d.Depth() != log2(w) {
			t.Errorf("depth(D(%d)) = %d, want %d", w, d.Depth(), log2(w))
		}
		if e.Depth() != log2(w) {
			t.Errorf("depth(E(%d)) = %d, want %d", w, e.Depth(), log2(w))
		}
		// Size: (w/2) * lgw balancers each.
		want := w / 2 * log2(w)
		if d.Size() != want || e.Size() != want {
			t.Errorf("sizes D=%d E=%d, want %d", d.Size(), e.Size(), want)
		}
	}
}

// E5 / Lemma 5.2: D(w) is lgw-smoothing.
func TestForwardSmoothing(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for _, w := range []int{2, 4, 8, 16, 32} {
		n, err := NewForward(w)
		if err != nil {
			t.Fatal(err)
		}
		exhaustive := 4
		if w > 8 {
			exhaustive = 0
		}
		if err := network.CheckSmoothing(n, int64(log2(w)), exhaustive, 500, rng); err != nil {
			t.Errorf("D(%d): %v", w, err)
		}
	}
}

// E6 consequence of Lemma 5.3: E(w) is lgw-smoothing too.
func TestBackwardSmoothing(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for _, w := range []int{2, 4, 8, 16, 32} {
		n, err := NewBackward(w)
		if err != nil {
			t.Fatal(err)
		}
		exhaustive := 4
		if w > 8 {
			exhaustive = 0
		}
		if err := network.CheckSmoothing(n, int64(log2(w)), exhaustive, 500, rng); err != nil {
			t.Errorf("E(%d): %v", w, err)
		}
	}
}

// Neither butterfly is a counting network for w >= 4 (they only smooth).
func TestButterflyIsNotCounting(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	for _, build := range []func(int) (*network.Network, error){NewForward, NewBackward} {
		n, err := build(4)
		if err != nil {
			t.Fatal(err)
		}
		if err := network.CheckCounting(n, 5, 200, rng); err == nil {
			t.Errorf("%s accepted as counting network", n.Name())
		}
	}
}

// E6 / Lemma 5.3: explicit isomorphism witness for small widths. The probe
// battery (unit vectors + random vectors) pins the behaviour; the found
// witness is then validated on fresh random inputs.
func TestIsomorphismSmallW(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for _, w := range []int{1, 2, 4} {
		d, err := NewForward(w)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewBackward(w)
		if err != nil {
			t.Fatal(err)
		}
		var probes [][]int64
		for i := 0; i < w; i++ {
			u := make([]int64, w)
			u[i] = 1
			probes = append(probes, u)
			u2 := make([]int64, w)
			u2[i] = 3
			probes = append(probes, u2)
		}
		for k := 0; k < 6; k++ {
			x := make([]int64, w)
			for i := range x {
				x[i] = rng.Int63n(9)
			}
			probes = append(probes, x)
		}
		pin, pout, ok := FindIsomorphism(e, d, probes)
		if !ok {
			t.Fatalf("no isomorphism witness found for w=%d", w)
		}
		// Validate the witness on fresh random inputs (Lemma 2.7).
		apply := func(p []int, x []int64) []int64 {
			y := make([]int64, len(x))
			for i, v := range x {
				y[p[i]] = v
			}
			return y
		}
		for trial := 0; trial < 300; trial++ {
			x := make([]int64, w)
			for i := range x {
				x[i] = rng.Int63n(50)
			}
			ye, err := e.Quiescent(x)
			if err != nil {
				t.Fatal(err)
			}
			yd, err := d.Quiescent(apply(pin, x))
			if err != nil {
				t.Fatal(err)
			}
			if !seq.Equal(apply(pout, ye), yd) {
				t.Fatalf("w=%d: witness fails on input %v", w, x)
			}
		}
	}
}

// Structural sanity: E(8) matches the Fig. 14 bottom shape — first layer
// pairs (i, i+4), second layer pairs (i, i+2) within halves, third layer
// adjacent pairs.
func TestBackwardStructure8(t *testing.T) {
	n, err := NewBackward(8)
	if err != nil {
		t.Fatal(err)
	}
	layers := n.Layers()
	if len(layers) != 3 {
		t.Fatalf("E(8) has %d layers", len(layers))
	}
	// Layer 1: inputs i and i+4 meet at the same balancer.
	for i := 0; i < 4; i++ {
		n1, _ := n.InputDest(i)
		n2, _ := n.InputDest(i + 4)
		if n1 != n2 {
			t.Errorf("E(8): inputs %d and %d do not meet (nodes %d, %d)", i, i+4, n1, n2)
		}
	}
}

// The forward butterfly D(8): outputs i and i+4 come from the same final
// balancer (ladder last).
func TestForwardStructure8(t *testing.T) {
	n, err := NewForward(8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		n1, _ := n.OutputSource(i)
		n2, _ := n.OutputSource(i + 4)
		if n1 != n2 {
			t.Errorf("D(8): outputs %d and %d from different balancers", i, i+4)
		}
	}
}

func TestInvalidWidth(t *testing.T) {
	for _, w := range []int{0, 3, 6, -2} {
		if _, err := NewForward(w); err == nil {
			t.Errorf("NewForward(%d) accepted", w)
		}
		if _, err := NewBackward(w); err == nil {
			t.Errorf("NewBackward(%d) accepted", w)
		}
	}
}

// Width-1 butterflies are wires: quiescent identity.
func TestTrivialButterfly(t *testing.T) {
	n, err := NewForward(1)
	if err != nil {
		t.Fatal(err)
	}
	y, err := n.Quiescent([]int64{7})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 7 {
		t.Fatalf("D(1) not a wire: %v", y)
	}
}

// Sum preservation through both butterflies.
func TestSumPreservation(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	d, _ := NewForward(16)
	e, _ := NewBackward(16)
	for trial := 0; trial < 200; trial++ {
		x := make([]int64, 16)
		for i := range x {
			x[i] = rng.Int63n(30)
		}
		for _, n := range []*network.Network{d, e} {
			y, err := n.Quiescent(x)
			if err != nil {
				t.Fatal(err)
			}
			if seq.Sum(y) != seq.Sum(x) {
				t.Fatalf("%s: sum %d -> %d", n.Name(), seq.Sum(x), seq.Sum(y))
			}
		}
	}
}
