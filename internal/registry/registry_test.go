package registry

import (
	"testing"
)

func TestAllFamiliesBuild(t *testing.T) {
	p := Params{W: 8, T: 16, Delta: 4}
	for _, f := range Families() {
		n, err := Build(f, p)
		if err != nil {
			t.Errorf("%s: %v", f, err)
			continue
		}
		if n.Size() == 0 && f != "wire" {
			t.Errorf("%s: empty network", f)
		}
	}
}

func TestDefaults(t *testing.T) {
	// T defaults to W; Delta defaults to 2.
	n, err := Build("cwt", Params{W: 8})
	if err != nil {
		t.Fatal(err)
	}
	if n.OutWidth() != 8 {
		t.Fatalf("default t: out width %d", n.OutWidth())
	}
	m, err := Build("merger", Params{T: 8})
	if err != nil {
		t.Fatal(err)
	}
	if m.Depth() != 1 {
		t.Fatalf("default delta: depth %d", m.Depth())
	}
}

func TestUnknownFamily(t *testing.T) {
	if _, err := Build("nope", Params{W: 8}); err == nil {
		t.Fatal("unknown family accepted")
	}
}

func TestInvalidParamsPropagate(t *testing.T) {
	if _, err := Build("cwt", Params{W: 6}); err == nil {
		t.Fatal("invalid width accepted")
	}
}

func TestFamiliesSorted(t *testing.T) {
	fams := Families()
	if len(fams) < 10 {
		t.Fatalf("only %d families", len(fams))
	}
	for i := 1; i < len(fams); i++ {
		if fams[i-1] >= fams[i] {
			t.Fatalf("families not sorted: %v", fams)
		}
	}
}
