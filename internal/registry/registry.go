// Package registry resolves network family names to constructors, shared
// by the command-line tools and the benchmark harness.
package registry

import (
	"fmt"
	"sort"

	"repro/internal/bitonic"
	"repro/internal/butterfly"
	"repro/internal/core"
	"repro/internal/dtree"
	"repro/internal/merge"
	"repro/internal/network"
	"repro/internal/periodic"
)

// Params carries the size parameters a family may need.
type Params struct {
	W     int // input width
	T     int // output width (families with t != w)
	Delta int // merging parameter (merger family)
}

// Families lists the available family names.
func Families() []string {
	names := make([]string, 0, len(builders))
	for k := range builders {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

var builders = map[string]func(Params) (*network.Network, error){
	"cwt":        func(p Params) (*network.Network, error) { return core.New(p.W, defT(p)) },
	"prefix":     func(p Params) (*network.Network, error) { return core.NewPrefix(p.W, defT(p)) },
	"prefix22":   func(p Params) (*network.Network, error) { return core.NewPrefix22(p.W) },
	"ladder":     func(p Params) (*network.Network, error) { return core.NewLadder(p.W) },
	"merger":     func(p Params) (*network.Network, error) { return merge.New(defT(p), defDelta(p)) },
	"bitonic":    func(p Params) (*network.Network, error) { return bitonic.New(p.W) },
	"bitmerger":  func(p Params) (*network.Network, error) { return bitonic.NewMerger(p.W) },
	"periodic":   func(p Params) (*network.Network, error) { return periodic.New(p.W) },
	"block":      func(p Params) (*network.Network, error) { return periodic.NewBlock(p.W) },
	"butterfly":  func(p Params) (*network.Network, error) { return butterfly.NewForward(p.W) },
	"bbutterfly": func(p Params) (*network.Network, error) { return butterfly.NewBackward(p.W) },
	"dtree":      func(p Params) (*network.Network, error) { return dtree.NewToggleNetwork(p.W) },
}

func defT(p Params) int {
	if p.T == 0 {
		return p.W
	}
	return p.T
}

func defDelta(p Params) int {
	if p.Delta == 0 {
		return 2
	}
	return p.Delta
}

// Build constructs the named network family with the given parameters.
func Build(family string, p Params) (*network.Network, error) {
	f, ok := builders[family]
	if !ok {
		return nil, fmt.Errorf("registry: unknown family %q (known: %v)", family, Families())
	}
	return f(p)
}
